/** @file Branch predictor behaviour tests. */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "sim/random.hh"

namespace hypertee
{
namespace
{

/** Train on a repeating pattern and return the accuracy tail. */
double
patternAccuracy(BranchPredictor &bp, const std::vector<bool> &pattern,
                int iterations, std::uint64_t pc = 0x400000)
{
    int correct = 0, total = 0;
    for (int i = 0; i < iterations; ++i) {
        for (bool taken : pattern) {
            bool pred = bp.predict(pc);
            bp.update(pc, taken);
            if (i >= iterations / 2) { // measure after warm-up
                ++total;
                correct += (pred == taken);
            }
        }
    }
    return static_cast<double>(correct) / total;
}

TEST(Gshare, LearnsAlwaysTaken)
{
    GshareBp bp(512);
    EXPECT_GT(patternAccuracy(bp, {true}, 100), 0.99);
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    GshareBp bp(512);
    EXPECT_GT(patternAccuracy(bp, {false}, 100), 0.99);
}

TEST(Gshare, LearnsShortPeriodicPattern)
{
    GshareBp bp(512);
    // T T N repeating: history disambiguates.
    EXPECT_GT(patternAccuracy(bp, {true, true, false}, 200), 0.9);
}

TEST(Gshare, ResetForgetsTraining)
{
    GshareBp bp(512);
    patternAccuracy(bp, {false}, 100);
    bp.reset();
    // Counters back to weakly-taken: first prediction is taken.
    EXPECT_TRUE(bp.predict(0x400000));
}

TEST(Tage, LearnsAlwaysTaken)
{
    TageBp bp(1024);
    EXPECT_GT(patternAccuracy(bp, {true}, 100), 0.99);
}

TEST(Tage, LearnsLongPeriodicPatternBetterThanGshare)
{
    // A period-24 pattern exceeds gshare's effective history but
    // fits TAGE's longer tagged components.
    std::vector<bool> pattern;
    for (int i = 0; i < 24; ++i)
        pattern.push_back(i % 7 == 0);

    GshareBp gshare(512);
    TageBp tage(2048);
    double g = patternAccuracy(gshare, pattern, 400);
    double t = patternAccuracy(tage, pattern, 400);
    EXPECT_GE(t, g) << "TAGE should not lose to gshare here";
    EXPECT_GT(t, 0.85);
}

TEST(Tage, TracksMispredictStats)
{
    TageBp bp(1024);
    Random rng(5);
    for (int i = 0; i < 1000; ++i) {
        bool taken = rng.chance(0.5); // unpredictable
        bp.predict(0x1000 + (i % 16) * 4);
        bp.update(0x1000 + (i % 16) * 4, taken);
    }
    EXPECT_EQ(bp.lookups(), 1000u);
    // Random outcomes: accuracy should hover near 50%.
    EXPECT_GT(bp.mispredictRate(), 0.3);
    EXPECT_LT(bp.mispredictRate(), 0.7);
}

TEST(Tage, DistinguishesBranchPcs)
{
    TageBp bp(2048);
    // Two branches with opposite biases, interleaved.
    int correct = 0, total = 0;
    for (int i = 0; i < 400; ++i) {
        bool p1 = bp.predict(0x1000);
        bp.update(0x1000, true);
        bool p2 = bp.predict(0x2000);
        bp.update(0x2000, false);
        if (i >= 200) {
            total += 2;
            correct += (p1 == true) + (p2 == false);
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST(Factory, MakesBothKinds)
{
    auto g = makePredictor("gshare", 512);
    auto t = makePredictor("tage", 1024);
    EXPECT_NE(g, nullptr);
    EXPECT_NE(t, nullptr);
}

TEST(FactoryDeath, RejectsUnknownKind)
{
    EXPECT_DEATH(makePredictor("perceptron", 512), "unknown");
}

} // namespace
} // namespace hypertee
