/**
 * @file
 * Differential pin of the optimized execution engines against
 * Core::runReference, the executable specification of the timing
 * model.
 *
 * Core::run dispatches to runFused (SyntheticWorkload streams) or
 * the block-batched runEngine (anything else); both devirtualize
 * the predictor and share the flattened memAccess fast path. Every
 * one of those transformations claims bit-for-bit equivalence with
 * the reference scalar loop — this test enforces the claim across
 * randomized workload profiles, both predictors, both dispatch
 * paths, chunked (quantum) execution, and the faulting paths.
 *
 * Two fully separate simulation environments are constructed per
 * comparison (own PhysicalMemory, page table, Core) so predictor,
 * TLB and cache state cannot leak between the engines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "mem/bitmap.hh"
#include "mem/phys_mem.hh"
#include "sim/random.hh"
#include "workload/synthetic.hh"

namespace hypertee
{
namespace
{

constexpr Addr kMemBase = 0x8000'0000;
constexpr Addr kMemSize = 64 * 1024 * 1024;
constexpr Addr kHeapVa = 0x1000'0000;
constexpr Addr kSparseVa = 0x2000'0000;

/**
 * Type-erasing forward so dynamic_cast<SyntheticWorkload *> fails
 * and Core::run takes the block-batched runEngine path instead of
 * the generation-fused one.
 */
class OpaqueStream : public InstStream
{
  public:
    explicit OpaqueStream(InstStream &inner) : _inner(inner) {}
    bool next(MicroOp &op) override { return _inner.next(op); }

  private:
    InstStream &_inner;
};

/** One self-contained core + mapped address space + workload. */
struct Env
{
    PhysicalMemory mem{kMemBase, kMemSize};
    EnclaveBitmap bm{&mem, kMemBase};
    Addr nextFrame = kMemBase + 0x20'0000;
    PageTable pt{&mem, [this] {
                     Addr f = nextFrame;
                     nextFrame += pageSize;
                     return f;
                 }};
    Core core;
    SyntheticWorkload stream;

    Env(const CoreParams &cp, const WorkloadProfile &p,
        std::uint64_t seed, bool map_sparse)
        : core(cp, &bm), stream(p, kHeapVa, kSparseVa, seed)
    {
        Addr pa = kMemBase + 0x100'0000;
        for (Addr off = 0; off < p.workingSetBytes + pageSize;
             off += pageSize, pa += pageSize)
            pt.map(kHeapVa + off, pa, PteRead | PteWrite);
        if (map_sparse) {
            for (Addr off = 0;
                 off < p.sparsePages * pageSize && pa < kMemBase +
                     kMemSize - pageSize;
                 off += pageSize, pa += pageSize)
                pt.map(kSparseVa + off, pa, PteRead | PteWrite);
        }
        core.mmu().setPageTable(&pt);
    }
};

void
expectSameStats(const RunStats &fast, const RunStats &ref,
                const std::string &what)
{
    EXPECT_EQ(fast.instructions, ref.instructions) << what;
    EXPECT_EQ(fast.cycles, ref.cycles) << what;
    EXPECT_EQ(fast.ticks, ref.ticks) << what;
    EXPECT_EQ(fast.loads, ref.loads) << what;
    EXPECT_EQ(fast.stores, ref.stores) << what;
    EXPECT_EQ(fast.branches, ref.branches) << what;
    EXPECT_EQ(fast.mispredicts, ref.mispredicts) << what;
    EXPECT_EQ(fast.tlbMisses, ref.tlbMisses) << what;
    EXPECT_EQ(fast.faults, ref.faults) << what;
}

/** A randomized profile; @p r drives every knob. */
WorkloadProfile
randomProfile(Random &r)
{
    WorkloadProfile p;
    p.name = "diff";
    p.instructions = 30'000 + r.below(90'000);
    p.loadFrac = 0.05 + 0.30 * r.real();
    p.storeFrac = 0.02 + 0.20 * r.real();
    p.branchFrac = 0.05 + 0.20 * r.real();
    p.fpFrac = 0.10 * r.real();
    p.workingSetBytes = (16 + r.below(512)) * 1024;
    p.sequentialFrac = r.real();
    p.sparseFrac = 0.10 * r.real();
    p.sparsePages = 16 + r.below(256);
    // Cover both the pow2 mask fast path and the modulo fallback.
    p.branchPeriod = r.below(2) ? 16 : 7;
    p.branchNoise = 0.05 * r.real();
    return p;
}

void
runDifferential(const CoreParams &cp, const WorkloadProfile &p,
                std::uint64_t seed, bool map_sparse,
                const std::string &what)
{
    // Fused path (Core::run sees the concrete SyntheticWorkload).
    {
        Env fast(cp, p, seed, map_sparse);
        Env ref(cp, p, seed, map_sparse);
        expectSameStats(fast.core.run(fast.stream),
                        ref.core.runReference(ref.stream),
                        what + " [fused]");
    }
    // Block-batched path (type-erased stream).
    {
        Env fast(cp, p, seed, map_sparse);
        Env ref(cp, p, seed, map_sparse);
        OpaqueStream opaque(fast.stream);
        expectSameStats(fast.core.run(opaque),
                        ref.core.runReference(ref.stream),
                        what + " [block]");
    }
}

TEST(CoreDifferential, RandomProfilesMatchReferenceBothPredictors)
{
    Random r(0xd1ff'0001);
    for (int i = 0; i < 8; ++i) {
        WorkloadProfile p = randomProfile(r);
        std::uint64_t seed = r.next();
        for (const char *bp : {"tage", "gshare"}) {
            CoreParams cp = csCoreParams();
            cp.bpKind = bp;
            runDifferential(cp, p, seed, /*map_sparse=*/true,
                            "profile " + std::to_string(i) + " bp=" +
                                bp);
        }
    }
}

TEST(CoreDifferential, InOrderCoreMatchesReference)
{
    // memOverlap is ignored in-order: the full stall is charged.
    Random r(0xd1ff'0002);
    WorkloadProfile p = randomProfile(r);
    CoreParams cp = emsWeakParams();
    runDifferential(cp, p, 99, /*map_sparse=*/true, "in-order");
}

TEST(CoreDifferential, ChunkedQuantumRunsMatchChunkedReference)
{
    // The fig11 pattern: run in fixed instruction quanta (cycles
    // round up per chunk, so chunked must compare against chunked).
    Random r(0xd1ff'0003);
    WorkloadProfile p = randomProfile(r);
    p.instructions = 100'000;
    CoreParams cp = csCoreParams();

    Env fast(cp, p, 7, true);
    Env ref(cp, p, 7, true);
    RunStats fast_total, ref_total;
    for (;;) {
        RunStats a = fast.core.run(fast.stream, 9'001);
        RunStats b = ref.core.runReference(ref.stream, 9'001);
        expectSameStats(a, b, "chunk");
        if (a.instructions == 0)
            break;
        fast_total.add(a);
        ref_total.add(b);
    }
    expectSameStats(fast_total, ref_total, "chunk totals");
    EXPECT_EQ(fast_total.instructions, p.instructions);
}

TEST(CoreDifferential, UnmappedSparsePagesFaultIdentically)
{
    // No fault handler installed: every sparse access page-faults,
    // is counted, and the access is dropped — on both engines.
    Random r(0xd1ff'0004);
    WorkloadProfile p = randomProfile(r);
    p.sparseFrac = 0.25;
    p.sequentialFrac = 0.5;
    CoreParams cp = csCoreParams();
    runDifferential(cp, p, 11, /*map_sparse=*/false, "faulting");
}

TEST(CoreDifferential, ResolvingFaultHandlerMatchesReference)
{
    // A demand-paging handler: maps the faulting page and retries.
    // Exercises the handler retry loop (latency charge + re-
    // translate) on both engines.
    Random r(0xd1ff'0005);
    WorkloadProfile p = randomProfile(r);
    p.sparseFrac = 0.20;
    p.sparsePages = 64;
    CoreParams cp = csCoreParams();

    auto install = [](Env &e) {
        e.core.setFaultHandler(
            [&e](Addr va, MemFault fault, bool) -> FaultOutcome {
                if (fault != MemFault::PageFault)
                    return {false, 0};
                Addr page = va & ~(pageSize - 1);
                Addr pa = e.nextFrame;
                e.nextFrame += pageSize;
                e.pt.map(page, pa, PteRead | PteWrite);
                return {true, 2'000};
            });
    };

    {
        Env fast(cp, p, 13, false);
        Env ref(cp, p, 13, false);
        install(fast);
        install(ref);
        expectSameStats(fast.core.run(fast.stream),
                        ref.core.runReference(ref.stream),
                        "demand-paging [fused]");
    }
    {
        Env fast(cp, p, 13, false);
        Env ref(cp, p, 13, false);
        install(fast);
        install(ref);
        OpaqueStream opaque(fast.stream);
        expectSameStats(fast.core.run(opaque),
                        ref.core.runReference(ref.stream),
                        "demand-paging [block]");
    }
}

} // namespace
} // namespace hypertee
