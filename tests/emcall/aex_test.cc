/** @file AEX (asynchronous enclave exit) flow tests, Section III-B. */

#include <gtest/gtest.h>

#include "core/sdk.hh"
#include "core/system.hh"

namespace hypertee
{
namespace
{

struct AexTest : ::testing::Test
{
    SystemParams
    params()
    {
        SystemParams p;
        p.csMemSize = 128ULL * 1024 * 1024;
        p.csCoreCount = 1;
        return p;
    }

    HyperTeeSystem sys{params()};
    EnclaveHandle enclave{sys, 0, EnclaveConfig{}};

    void
    SetUp() override
    {
        enclave.addImage(Bytes(pageSize, 0x42),
                         EnclaveLayout::codeBase, PteRead | PteExec);
        enclave.measure();
        ASSERT_TRUE(enclave.enter());
    }
};

TEST_F(AexTest, TimerInterruptParksTheEnclave)
{
    EXPECT_EQ(sys.emCall(0).asyncExit(ExcCause::TimerInterrupt,
                                      0x1000'0040),
              ExcRoute::ToCsOs);
    EXPECT_TRUE(sys.emCall(0).aexPending());
    EXPECT_EQ(sys.emCall(0).aexEnclave(), enclave.id());
    EXPECT_EQ(sys.emCall(0).aexPc(), 0x1000'0040u);
    // The core is back in the host context.
    EXPECT_FALSE(sys.emCall(0).inEnclave());
    EXPECT_FALSE(sys.core(0).mmu().enclaveMode());
}

TEST_F(AexTest, ResumeRestoresTheEnclaveContext)
{
    sys.emCall(0).asyncExit(ExcCause::TimerInterrupt, 0x1000'0040);
    ASSERT_TRUE(sys.emCall(0).resumeFromAex());
    EXPECT_FALSE(sys.emCall(0).aexPending());
    EXPECT_TRUE(sys.emCall(0).inEnclave());
    EXPECT_EQ(sys.emCall(0).currentEnclave(), enclave.id());
    EXPECT_TRUE(sys.core(0).mmu().enclaveMode());
    EXPECT_EQ(sys.core(0).mmu().pageTable(),
              sys.ems().enclavePageTable(enclave.id()));
}

TEST_F(AexTest, PageFaultRoutesToEmsWithoutParking)
{
    // Memory-management exceptions are the EMS's business: the
    // enclave context stays live while the gate resolves them.
    EXPECT_EQ(sys.emCall(0).asyncExit(ExcCause::PageFault,
                                      0x1000'0080),
              ExcRoute::ToEms);
    EXPECT_FALSE(sys.emCall(0).aexPending());
    EXPECT_TRUE(sys.emCall(0).inEnclave());
}

TEST_F(AexTest, ResumeWithoutPendingAexFails)
{
    EXPECT_FALSE(sys.emCall(0).resumeFromAex());
}

TEST_F(AexTest, AexOutsideEnclaveIsRoutingOnly)
{
    ASSERT_TRUE(enclave.exit());
    EXPECT_EQ(sys.emCall(0).asyncExit(ExcCause::TimerInterrupt, 0x80),
              ExcRoute::ToCsOs);
    EXPECT_FALSE(sys.emCall(0).aexPending());
}

TEST_F(AexTest, AexResumeRoundTripSurvivesRepeats)
{
    for (int i = 0; i < 10; ++i) {
        sys.emCall(0).asyncExit(ExcCause::ExternalInterrupt,
                                0x1000'0000 + i * 4);
        ASSERT_TRUE(sys.emCall(0).resumeFromAex()) << "round " << i;
    }
    EXPECT_TRUE(sys.emCall(0).inEnclave());
}

TEST_F(AexTest, DestroyedEnclaveCannotBeResumed)
{
    sys.emCall(0).asyncExit(ExcCause::TimerInterrupt, 0x1000'0040);
    // While parked, the OS destroys the enclave.
    ASSERT_TRUE(enclave.destroy());
    EXPECT_FALSE(sys.emCall(0).resumeFromAex())
        << "EMS rejects ERESUME of a destroyed enclave";
}

TEST_F(AexTest, KeySlotExhaustionSuspendsParkedEnclaves)
{
    // End-to-end KeyID recycling (Section IV-C): with a tiny key
    // table, creating more enclaves forces the EMS to suspend a
    // parked (Measured) one and reuse its slot.
    SystemParams p = params();
    p.encryptionKeySlots = 3; // bitmap-free slots are scarce
    HyperTeeSystem small(p);

    std::vector<std::unique_ptr<EnclaveHandle>> enclaves;
    unsigned created = 0;
    for (int i = 0; i < 6; ++i) {
        auto e = std::make_unique<EnclaveHandle>(small, 0,
                                                 EnclaveConfig{});
        if (!e->valid())
            break;
        e->addImage(Bytes(pageSize, std::uint8_t(i)),
                    EnclaveLayout::codeBase, PteRead | PteExec);
        e->measure();
        ++created;
        enclaves.push_back(std::move(e));
    }
    EXPECT_GT(created, 3u)
        << "suspension must let creation continue past the slot count";
    // At least one earlier enclave got suspended.
    unsigned suspended = 0;
    for (const auto &e : enclaves) {
        const EnclaveControl *ctl = small.ems().enclave(e->id());
        suspended += (ctl->state == EnclaveState::Suspended);
    }
    EXPECT_GT(suspended, 0u);
}

} // namespace
} // namespace hypertee
