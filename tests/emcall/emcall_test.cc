/** @file EMCall gate tests (privilege, binding, obfuscation). */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "emcall/emcall.hh"

namespace hypertee
{
namespace
{

struct GateTest : ::testing::Test
{
    SystemParams
    params()
    {
        SystemParams p;
        p.csMemSize = 128ULL * 1024 * 1024;
        p.csCoreCount = 1;
        return p;
    }

    HyperTeeSystem sys{params()};
};

TEST_F(GateTest, AcceptsMatchingPrivilege)
{
    InvokeResult r = sys.emCall(0).invoke(
        PrimitiveOp::ECreate, PrivMode::Supervisor, {4, 8, 64});
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.response.status, PrimStatus::Ok);
}

TEST_F(GateTest, BlocksAllCrossPrivilegeCombos)
{
    // User-mode calls of OS primitives.
    for (PrimitiveOp op : {PrimitiveOp::ECreate, PrimitiveOp::EAdd,
                           PrimitiveOp::EWb, PrimitiveOp::EMeas,
                           PrimitiveOp::EDestroy}) {
        InvokeResult r =
            sys.emCall(0).invoke(op, PrivMode::User, {1});
        EXPECT_FALSE(r.accepted) << primitiveName(op);
    }
    // Supervisor-mode calls of user primitives.
    for (PrimitiveOp op : {PrimitiveOp::EAlloc, PrimitiveOp::EShmGet,
                           PrimitiveOp::EAttest}) {
        InvokeResult r =
            sys.emCall(0).invoke(op, PrivMode::Supervisor, {1});
        EXPECT_FALSE(r.accepted) << primitiveName(op);
    }
    EXPECT_EQ(sys.emCall(0).blockedCrossPrivilege(), 8u);
}

TEST_F(GateTest, MachineModeBypassesForFirmwarePaths)
{
    // EMCall itself (machine mode) may invoke any primitive, e.g.
    // the page-fault -> EALLOC path.
    InvokeResult r = sys.emCall(0).invoke(
        PrimitiveOp::ECreate, PrivMode::Machine, {4, 8, 64});
    EXPECT_TRUE(r.accepted);
}

TEST_F(GateTest, LatencyIncludesGateAndServiceTime)
{
    InvokeResult r = sys.emCall(0).invoke(
        PrimitiveOp::ECreate, PrivMode::Supervisor, {4, 8, 64});
    // Must exceed the EMS-side service time alone: the gate, the
    // fabric hops, and polling all add on top.
    EXPECT_GT(r.latency, r.response.completedAt);
}

TEST_F(GateTest, ObfuscationJitterVariesLatency)
{
    std::set<Tick> latencies;
    for (int i = 0; i < 10; ++i) {
        InvokeResult r = sys.emCall(0).invoke(
            PrimitiveOp::ECreate, PrivMode::Supervisor, {4, 8, 64});
        latencies.insert(r.latency -
                         r.response.completedAt); // strip service
    }
    EXPECT_GT(latencies.size(), 5u)
        << "response polling adds randomized jitter";
}

TEST_F(GateTest, DisablingObfuscationStabilizesLatency)
{
    sys.emCall(0).setObfuscation(false);
    std::set<Tick> latencies;
    for (int i = 0; i < 10; ++i) {
        InvokeResult r = sys.emCall(0).invoke(
            PrimitiveOp::ECreate, PrivMode::Supervisor, {4, 8, 64});
        latencies.insert(r.latency - r.response.completedAt);
    }
    EXPECT_EQ(latencies.size(), 1u);
}

TEST_F(GateTest, ExceptionRoutingMatchesSection3B)
{
    EXPECT_EQ(EmCall::route(ExcCause::PageFault), ExcRoute::ToEms);
    EXPECT_EQ(EmCall::route(ExcCause::MisalignedAccess),
              ExcRoute::ToEms);
    EXPECT_EQ(EmCall::route(ExcCause::IllegalInstruction),
              ExcRoute::ToCsOs);
    EXPECT_EQ(EmCall::route(ExcCause::TimerInterrupt),
              ExcRoute::ToCsOs);
    EXPECT_EQ(EmCall::route(ExcCause::ExternalInterrupt),
              ExcRoute::ToCsOs);
}

TEST_F(GateTest, TracksIssuedRequests)
{
    sys.emCall(0).invoke(PrimitiveOp::ECreate, PrivMode::Supervisor,
                         {4, 8, 64});
    sys.emCall(0).invoke(PrimitiveOp::ECreate, PrivMode::User,
                         {4, 8, 64}); // blocked, not issued
    EXPECT_EQ(sys.emCall(0).requestsIssued(), 1u);
}

} // namespace
} // namespace hypertee
