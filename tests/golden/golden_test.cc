/**
 * @file
 * Golden-value regression tests: seeded, deterministic simulation
 * runs pinned to checked-in fixtures. The model is a discrete cost
 * model with no host-dependent timing, so every counter below is
 * exactly reproducible; any drift means a change altered simulated
 * behaviour and must either be fixed or explicitly re-baselined.
 *
 * Re-baseline (after an intentional model change) with
 *     HT_UPDATE_GOLDEN=1 ./build/tests/test_golden
 * and commit the updated fixtures in tests/golden/ with a note in the
 * PR about why the numbers moved.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "bench/bench_util.hh"
#include "workload/profiles.hh"
#include "workload/runner.hh"
#include "workload/traffic.hh"

namespace hypertee
{
namespace
{

using GoldenMap = std::map<std::string, std::uint64_t>;

std::string
goldenPath(const char *file)
{
    return std::string(HT_GOLDEN_DIR) + "/" + file;
}

bool
loadGolden(const std::string &path, GoldenMap &out)
{
    std::ifstream in(path);
    if (!in.good())
        return false;
    std::string key;
    std::uint64_t value;
    while (in >> key >> value)
        out[key] = value;
    return true;
}

/**
 * Compare @p actual against the fixture, or rewrite the fixture when
 * HT_UPDATE_GOLDEN is set. Missing and extra keys are failures too:
 * a renamed metric must be re-baselined consciously, not silently.
 */
void
checkGolden(const char *file, const GoldenMap &actual)
{
    const std::string path = goldenPath(file);
    if (std::getenv("HT_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        for (const auto &[key, value] : actual)
            out << key << " " << value << "\n";
        GTEST_SKIP() << "rewrote " << path;
    }
    GoldenMap expected;
    ASSERT_TRUE(loadGolden(path, expected))
        << "missing fixture " << path
        << "; generate it with HT_UPDATE_GOLDEN=1";
    for (const auto &[key, value] : expected) {
        auto it = actual.find(key);
        if (it == actual.end()) {
            ADD_FAILURE() << "pinned metric no longer measured: "
                          << key;
            continue;
        }
        EXPECT_EQ(it->second, value)
            << key << " drifted from the golden value; re-baseline "
            << "with HT_UPDATE_GOLDEN=1 if the change is intended";
    }
    for (const auto &[key, value] : actual) {
        EXPECT_TRUE(expected.count(key) != 0)
            << "unpinned new metric " << key << " = " << value
            << "; re-baseline with HT_UPDATE_GOLDEN=1";
    }
}

/**
 * Table IV scenario at a reduced instruction budget: the full
 * enclave lifecycle of the `aes` profile, with and without the
 * crypto engine, pinning every primitive-phase latency.
 */
TEST(Golden, Table4PrimitiveLatencies)
{
    logging_detail::setVerbose(false);
    WorkloadProfile profile = profileByName("aes");
    profile.instructions = 2'000'000;

    GoldenMap actual;
    for (bool engine : {false, true}) {
        HyperTeeSystem sys(evalSystem(engine));
        WorkloadRunner runner(sys);
        EnclaveRunResult r =
            runner.runEnclave(profile, 1, /*charge_primitives=*/false);
        const std::string prefix =
            std::string("aes.") + (engine ? "crypto" : "noncrypto");
        actual[prefix + ".ecreate_ticks"] = r.createLatency;
        actual[prefix + ".eadd_ticks"] = r.addLatency;
        actual[prefix + ".emeas_ticks"] = r.measLatency;
        actual[prefix + ".eenter_eexit_ticks"] = r.enterExitLatency;
        actual[prefix + ".edestroy_ticks"] = r.destroyLatency;
        actual[prefix + ".run_ticks"] = r.stats.ticks;
        actual[prefix + ".run_instructions"] = r.stats.instructions;
    }
    checkGolden("table4_primitives.golden", actual);
}

/**
 * Figure 10 scenario at a reduced instruction budget: Host-Native vs
 * Host-Bitmap runtime and TLB misses for a quiet profile
 * (perlbench_r) and the TLB-stressing outlier (xalancbmk_r).
 */
TEST(Golden, Fig10BitmapOverheads)
{
    logging_detail::setVerbose(false);
    GoldenMap actual;
    for (const char *name : {"perlbench_r", "xalancbmk_r"}) {
        WorkloadProfile profile = profileByName(name);
        profile.instructions = 3'000'000;

        HyperTeeSystem native_sys(evalSystem(true));
        makeHostNative(native_sys);
        WorkloadRunner native_runner(native_sys);
        RunStats native = native_runner.runHost(profile);

        HyperTeeSystem bitmap_sys(evalSystem(true));
        bitmap_sys.core(0).hierarchy().setProtectionEnabled(false);
        WorkloadRunner bitmap_runner(bitmap_sys);
        RunStats bitmap = bitmap_runner.runHost(profile);

        const std::string prefix = name;
        actual[prefix + ".native_ticks"] = native.ticks;
        actual[prefix + ".bitmap_ticks"] = bitmap.ticks;
        actual[prefix + ".bitmap_tlb_misses"] = bitmap.tlbMisses;
        actual[prefix + ".loads"] = bitmap.loads;
        actual[prefix + ".stores"] = bitmap.stores;
    }
    checkGolden("fig10_bitmap.golden", actual);
}

/**
 * The exact bench_fleet_slo --smoke sweep (same scenario list, same
 * seed): every load point's throughput/rejection counters and the
 * attest-class latency quantiles, pinned to the tick. This is the
 * fixture behind the fleet traffic driver — if the scheduler model,
 * the arrival processes or the pool watermark policy change
 * behaviour, this is where it shows up first.
 */
TEST(Golden, FleetSloSmokeSweep)
{
    logging_detail::setVerbose(false);
    GoldenMap actual;
    for (const FleetScenario &scenario :
         fleetSloScenarios(/*smoke=*/true, /*seed=*/42)) {
        ShardStats stats;
        FleetTrafficSim sim(scenario.params, scenario.name, stats);
        sim.run();

        const std::string prefix = scenario.name;
        actual[prefix + ".offered"] = sim.offered();
        actual[prefix + ".completed"] = sim.completed();
        actual[prefix + ".rejected"] = sim.rejected();
        actual[prefix + ".peak_live"] = sim.peakLiveEnclaves();
        actual[prefix + ".peak_queue"] = sim.peakQueueDepth();
        actual[prefix + ".end_ticks"] = sim.endTime();
        actual[prefix + ".pool_os_requests"] = sim.pool().osRequests();
        actual[prefix + ".pool_os_returns"] = sim.pool().osReturns();
        Distribution &attest =
            stats.distribution(prefix + ".attest_latency");
        actual[prefix + ".attest_p50_ticks"] =
            std::uint64_t(attest.quantile(0.5));
        actual[prefix + ".attest_p99_ticks"] =
            std::uint64_t(attest.quantile(0.99));
        actual[prefix + ".attest_p999_ticks"] =
            std::uint64_t(attest.quantile(0.999));
    }
    checkGolden("fleet_slo.golden", actual);
}

} // namespace
} // namespace hypertee
