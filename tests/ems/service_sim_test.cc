/** @file Queueing simulator tests (Figure 6 infrastructure). */

#include <gtest/gtest.h>

#include "ems/service_sim.hh"

namespace hypertee
{
namespace
{

ServiceSimParams
quiet(unsigned cores)
{
    ServiceSimParams p;
    p.emsCores = cores;
    p.obfuscation = false;
    p.transportOverhead = 100'000;
    return p;
}

TEST(ServiceSim, SingleClientLatencyIsServicePlusTransport)
{
    EmsServiceSim sim(quiet(1));
    sim.addClient("c", 3, [](std::uint64_t) { return Tick(1'000'000); });
    sim.run();
    for (Tick lat : sim.latencies("c"))
        EXPECT_EQ(lat, 1'100'000u);
}

TEST(ServiceSim, QueueingDelaysSecondClientOnOneServer)
{
    EmsServiceSim sim(quiet(1));
    sim.addClient("a", 1, [](std::uint64_t) { return Tick(5'000'000); });
    sim.addClient("b", 1, [](std::uint64_t) { return Tick(1'000'000); });
    sim.run();
    EXPECT_EQ(sim.latencies("a").at(0), 5'100'000u);
    EXPECT_EQ(sim.latencies("b").at(0), 6'100'000u)
        << "b waits behind a";
}

TEST(ServiceSim, TwoServersServeConcurrently)
{
    EmsServiceSim sim(quiet(2));
    sim.addClient("a", 1, [](std::uint64_t) { return Tick(5'000'000); });
    sim.addClient("b", 1, [](std::uint64_t) { return Tick(1'000'000); });
    sim.run();
    EXPECT_EQ(sim.latencies("b").at(0), 1'100'000u)
        << "no serialization with a second EMS core";
}

TEST(ServiceSim, MoreServersImproveTailLatency)
{
    auto p99 = [](unsigned cores) {
        EmsServiceSim sim(quiet(cores));
        for (int c = 0; c < 8; ++c) {
            sim.addClient("c" + std::to_string(c), 50,
                          [](std::uint64_t) { return Tick(2'000'000); });
        }
        sim.run();
        std::vector<Tick> all;
        for (int c = 0; c < 8; ++c) {
            const auto &l = sim.latencies("c" + std::to_string(c));
            all.insert(all.end(), l.begin(), l.end());
        }
        std::sort(all.begin(), all.end());
        return all[all.size() * 99 / 100];
    };

    EXPECT_GT(p99(1), p99(2));
    EXPECT_GE(p99(2), p99(4));
}

TEST(ServiceSim, ClosedLoopIssuesAllRequests)
{
    EmsServiceSim sim(quiet(2));
    sim.addClient("c", 100, [](std::uint64_t) { return Tick(10'000); });
    sim.run();
    EXPECT_EQ(sim.latencies("c").size(), 100u);
}

TEST(ServiceSim, ObfuscationAddsJitter)
{
    ServiceSimParams p = quiet(1);
    p.obfuscation = true;
    p.jitterMax = 500'000;
    EmsServiceSim sim(p);
    sim.addClient("c", 50, [](std::uint64_t) { return Tick(1'000'000); });
    sim.run();
    std::set<Tick> distinct(sim.latencies("c").begin(),
                            sim.latencies("c").end());
    EXPECT_GT(distinct.size(), 20u);
}

TEST(ServiceSimDeath, UnknownClientPanics)
{
    EmsServiceSim sim(quiet(1));
    sim.addClient("c", 1, [](std::uint64_t) { return Tick(1); });
    sim.run();
    EXPECT_DEATH(sim.latencies("nope"), "no such client");
}

} // namespace
} // namespace hypertee
