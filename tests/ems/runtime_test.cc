/** @file EMS runtime tests: all sixteen primitives + security rules. */

#include <gtest/gtest.h>

#include "ems/runtime.hh"

namespace hypertee
{
namespace
{

constexpr Addr kCsBase = 0x8000'0000;
constexpr Addr kCsSize = 256 * 1024 * 1024;
constexpr Addr kEmsBase = 0x10'0000'0000ULL;
constexpr Addr kEmsSize = 16 * 1024 * 1024;

struct RuntimeFixture : ::testing::Test
{
    PhysicalMemory csMem{kCsBase, kCsSize};
    PhysicalMemory emsMem{kEmsBase, kEmsSize};
    EnclaveBitmap bitmap{&csMem, kCsBase};
    MemoryEncryptionEngine enc{64};
    IHub hub{&csMem, &emsMem, &bitmap, &enc};
    EmsPort &port = hub.emsPort();
    Addr frameCursor = kCsBase + 0x100000;
    std::unique_ptr<EmsRuntime> rt;

    void
    SetUp() override
    {
        EFuse fuse;
        fuse.endorsementSeed = Bytes(32, 1);
        fuse.sealedKey = Bytes(32, 2);
        KeyManager km(fuse);

        EmsRuntimeParams params;
        params.pool.initialPages = 2048;
        params.pool.refillBatch = 512;
        auto os_alloc = [this](std::size_t n) {
            std::vector<Addr> out;
            for (std::size_t i = 0; i < n; ++i) {
                out.push_back(pageNumber(frameCursor));
                frameCursor += pageSize;
            }
            return out;
        };
        rt = std::make_unique<EmsRuntime>(&port, &csMem, km, params,
                                          os_alloc, nullptr);
        Bytes image = bytesFromString("runtime");
        Bytes fw = bytesFromString("firmware");
        ASSERT_TRUE(rt->secureBoot(image, Sha256::digest(image), fw,
                                   Sha256::digest(fw)));
    }

    PrimitiveResponse
    invoke(PrimitiveOp op, PrivMode mode,
           std::vector<std::uint64_t> args, EnclaveId caller = 0,
           Bytes payload = {})
    {
        PrimitiveRequest req;
        req.reqId = ++reqId;
        req.op = op;
        req.mode = mode;
        req.args = std::move(args);
        req.caller = caller;
        req.payload = std::move(payload);
        return rt->handle(req);
    }

    /** Full ECREATE + one EADD + EMEAS; returns the enclave id. */
    EnclaveId
    makeMeasuredEnclave()
    {
        PrimitiveResponse r =
            invoke(PrimitiveOp::ECreate, PrivMode::Supervisor,
                   {4, 8, 64});
        EXPECT_EQ(r.status, PrimStatus::Ok);
        EnclaveId id = static_cast<EnclaveId>(r.results.at(0));
        Bytes code(pageSize, 0x90);
        r = invoke(PrimitiveOp::EAdd, PrivMode::Supervisor,
                   {id, EnclaveLayout::codeBase, PteRead | PteExec}, 0,
                   code);
        EXPECT_EQ(r.status, PrimStatus::Ok);
        r = invoke(PrimitiveOp::EMeas, PrivMode::Supervisor, {id});
        EXPECT_EQ(r.status, PrimStatus::Ok);
        return id;
    }

    std::uint64_t reqId = 0;
};

TEST_F(RuntimeFixture, CreateBuildsEnclaveWithStaticAllocation)
{
    PrimitiveResponse r = invoke(PrimitiveOp::ECreate,
                                 PrivMode::Supervisor, {4, 8, 64});
    ASSERT_EQ(r.status, PrimStatus::Ok);
    EnclaveId id = static_cast<EnclaveId>(r.results.at(0));
    const EnclaveControl *enc_ctl = rt->enclave(id);
    ASSERT_NE(enc_ctl, nullptr);
    EXPECT_EQ(enc_ctl->state, EnclaveState::Created);
    // Static allocation: 4 stack + 8 heap pages already mapped.
    EXPECT_EQ(enc_ctl->pages.size(), 12u);
    EXPECT_NE(enc_ctl->keyId, 0);
    EXPECT_TRUE(enc.hasKey(enc_ctl->keyId));
    // Completion time is nonzero and models EMS work.
    EXPECT_GT(r.completedAt, 0u);
    EXPECT_TRUE(r.flags & kFlagFlushTlb);
}

TEST_F(RuntimeFixture, CreateRejectsBadConfig)
{
    EXPECT_EQ(invoke(PrimitiveOp::ECreate, PrivMode::Supervisor,
                     {0, 8, 64})
                  .status,
              PrimStatus::InvalidArgument);
    EXPECT_EQ(invoke(PrimitiveOp::ECreate, PrivMode::Supervisor, {4})
                  .status,
              PrimStatus::InvalidArgument);
}

TEST_F(RuntimeFixture, ForgedCrossPrivilegePacketRejected)
{
    PrimitiveResponse r =
        invoke(PrimitiveOp::ECreate, PrivMode::User, {4, 8, 64});
    EXPECT_EQ(r.status, PrimStatus::PermissionDenied);
    EXPECT_GT(rt->sanityRejections(), 0u);
}

TEST_F(RuntimeFixture, RejectsEverythingBeforeSecureBoot)
{
    // A fresh runtime that has NOT booted.
    EFuse fuse;
    fuse.endorsementSeed = Bytes(32, 1);
    fuse.sealedKey = Bytes(32, 2);
    PhysicalMemory ems2(kEmsBase, kEmsSize);
    PhysicalMemory cs2(kCsBase, kCsSize);
    EnclaveBitmap bm2(&cs2, kCsBase);
    MemoryEncryptionEngine enc2(8);
    IHub hub2(&cs2, &ems2, &bm2, &enc2);
    EmsPort &port2 = hub2.emsPort();
    Addr cursor = kCsBase + 0x100000;
    EmsRuntime rt2(&port2, &cs2, KeyManager(fuse), {},
                   [&](std::size_t n) {
                       std::vector<Addr> out;
                       for (std::size_t i = 0; i < n; ++i) {
                           out.push_back(pageNumber(cursor));
                           cursor += pageSize;
                       }
                       return out;
                   },
                   nullptr);
    PrimitiveRequest req;
    req.op = PrimitiveOp::ECreate;
    req.mode = PrivMode::Supervisor;
    req.args = {4, 8, 64};
    EXPECT_EQ(rt2.handle(req).status, PrimStatus::PermissionDenied);
}

TEST_F(RuntimeFixture, SecureBootRejectsTamperedImages)
{
    EFuse fuse;
    fuse.endorsementSeed = Bytes(32, 1);
    fuse.sealedKey = Bytes(32, 2);
    PhysicalMemory cs2(kCsBase, kCsSize);
    PhysicalMemory ems2(kEmsBase, kEmsSize);
    EnclaveBitmap bm2(&cs2, kCsBase);
    MemoryEncryptionEngine enc2(8);
    IHub hub2(&cs2, &ems2, &bm2, &enc2);
    EmsPort &port2 = hub2.emsPort();
    EmsRuntime rt2(&port2, &cs2, KeyManager(fuse), {},
                   [](std::size_t) { return std::vector<Addr>{}; },
                   nullptr);
    Bytes image = bytesFromString("runtime");
    Bytes fw = bytesFromString("firmware");
    Bytes tampered = bytesFromString("runtimeX");
    EXPECT_FALSE(rt2.secureBoot(tampered, Sha256::digest(image), fw,
                                Sha256::digest(fw)));
    EXPECT_FALSE(rt2.booted());
}

TEST_F(RuntimeFixture, AddMapsAndCopiesPageContent)
{
    PrimitiveResponse r = invoke(PrimitiveOp::ECreate,
                                 PrivMode::Supervisor, {4, 8, 64});
    EnclaveId id = static_cast<EnclaveId>(r.results.at(0));
    Bytes code(pageSize, 0xab);
    r = invoke(PrimitiveOp::EAdd, PrivMode::Supervisor,
               {id, EnclaveLayout::codeBase, PteRead | PteExec}, 0,
               code);
    ASSERT_EQ(r.status, PrimStatus::Ok);

    const PageTable *pt = rt->enclavePageTable(id);
    WalkResult walk = pt->walk(EnclaveLayout::codeBase);
    ASSERT_TRUE(walk.valid);
    EXPECT_EQ(csMem.readBytes(walk.pa, 4), Bytes(4, 0xab));
    EXPECT_EQ(walk.keyId, rt->enclave(id)->keyId);
    EXPECT_TRUE(bitmap.isEnclavePage(pageNumber(walk.pa)));
}

TEST_F(RuntimeFixture, PageTableFramesAreEnclaveMemory)
{
    // Section IV-A: the dedicated page table is itself protected.
    PrimitiveResponse r = invoke(PrimitiveOp::ECreate,
                                 PrivMode::Supervisor, {4, 8, 64});
    EnclaveId id = static_cast<EnclaveId>(r.results.at(0));
    const PageTable *pt = rt->enclavePageTable(id);
    for (Addr frame : pt->tableFrames()) {
        EXPECT_TRUE(bitmap.isEnclavePage(pageNumber(frame)));
        const PageOwner *owner = rt->ownership().lookup(
            pageNumber(frame));
        ASSERT_NE(owner, nullptr);
        EXPECT_EQ(owner->kind, PageKind::PageTable);
        EXPECT_EQ(owner->owner, id);
    }
}

TEST_F(RuntimeFixture, MeasurementIsDeterministicAndContentBound)
{
    EnclaveId a = makeMeasuredEnclave();
    EnclaveId b = makeMeasuredEnclave();
    // Identical images: identical measurements.
    EXPECT_EQ(rt->enclave(a)->measurement, rt->enclave(b)->measurement);

    // A third enclave with different content measures differently.
    PrimitiveResponse r = invoke(PrimitiveOp::ECreate,
                                 PrivMode::Supervisor, {4, 8, 64});
    EnclaveId c = static_cast<EnclaveId>(r.results.at(0));
    Bytes code(pageSize, 0x91);
    invoke(PrimitiveOp::EAdd, PrivMode::Supervisor,
           {c, EnclaveLayout::codeBase, PteRead | PteExec}, 0, code);
    invoke(PrimitiveOp::EMeas, PrivMode::Supervisor, {c});
    EXPECT_NE(rt->enclave(c)->measurement, rt->enclave(a)->measurement);
}

TEST_F(RuntimeFixture, UnmeasuredEnclaveCannotEnter)
{
    PrimitiveResponse r = invoke(PrimitiveOp::ECreate,
                                 PrivMode::Supervisor, {4, 8, 64});
    EnclaveId id = static_cast<EnclaveId>(r.results.at(0));
    EXPECT_EQ(invoke(PrimitiveOp::EEnter, PrivMode::Supervisor, {id})
                  .status,
              PrimStatus::PermissionDenied);
}

TEST_F(RuntimeFixture, EnterExitLifecycle)
{
    EnclaveId id = makeMeasuredEnclave();
    PrimitiveResponse r =
        invoke(PrimitiveOp::EEnter, PrivMode::Supervisor, {id});
    ASSERT_EQ(r.status, PrimStatus::Ok);
    EXPECT_TRUE(r.flags & kFlagEnterEnclave);
    EXPECT_EQ(rt->enclave(id)->state, EnclaveState::Running);

    r = invoke(PrimitiveOp::EExit, PrivMode::User, {}, id);
    ASSERT_EQ(r.status, PrimStatus::Ok);
    EXPECT_TRUE(r.flags & kFlagExitEnclave);
    EXPECT_EQ(rt->enclave(id)->state, EnclaveState::Measured);
}

TEST_F(RuntimeFixture, AllocExtendsHeapWithZeroedOwnedPages)
{
    EnclaveId id = makeMeasuredEnclave();
    std::size_t pages_before = rt->enclave(id)->pages.size();

    PrimitiveResponse r =
        invoke(PrimitiveOp::EAlloc, PrivMode::User, {3}, id);
    ASSERT_EQ(r.status, PrimStatus::Ok);
    Addr va = r.results.at(0);
    EXPECT_EQ(rt->enclave(id)->pages.size(), pages_before + 3);

    const PageTable *pt = rt->enclavePageTable(id);
    for (int i = 0; i < 3; ++i) {
        WalkResult walk = pt->walk(va + Addr(i) * pageSize);
        ASSERT_TRUE(walk.valid);
        EXPECT_TRUE(bitmap.isEnclavePage(pageNumber(walk.pa)));
        EXPECT_TRUE(rt->ownership().ownedBy(pageNumber(walk.pa), id));
        EXPECT_EQ(csMem.readBytes(walk.pa, 8), Bytes(8, 0));
    }
}

TEST_F(RuntimeFixture, AllocFromHostContextRejected)
{
    makeMeasuredEnclave();
    EXPECT_EQ(invoke(PrimitiveOp::EAlloc, PrivMode::User, {3},
                     invalidEnclaveId)
                  .status,
              PrimStatus::PermissionDenied);
}

TEST_F(RuntimeFixture, FreeReturnsScrubbedPages)
{
    EnclaveId id = makeMeasuredEnclave();
    PrimitiveResponse r =
        invoke(PrimitiveOp::EAlloc, PrivMode::User, {2}, id);
    Addr va = r.results.at(0);
    const PageTable *pt = rt->enclavePageTable(id);
    Addr pa = pt->walk(va).pa;
    csMem.writeBytes(pa, Bytes(16, 0x5e)); // enclave wrote secrets

    r = invoke(PrimitiveOp::EFree, PrivMode::User, {va, 2}, id);
    ASSERT_EQ(r.status, PrimStatus::Ok);
    EXPECT_FALSE(pt->walk(va).valid);
    EXPECT_FALSE(bitmap.isEnclavePage(pageNumber(pa)));
    // Scrubbed before returning to the pool: no secret residue.
    EXPECT_EQ(csMem.readBytes(pa, 16), Bytes(16, 0));
}

TEST_F(RuntimeFixture, FreeOfForeignPagesRejected)
{
    EnclaveId a = makeMeasuredEnclave();
    EnclaveId b = makeMeasuredEnclave();
    PrimitiveResponse r =
        invoke(PrimitiveOp::EAlloc, PrivMode::User, {1}, a);
    Addr va = r.results.at(0);
    // Enclave b tries to free a's allocation at the same VA: its own
    // page table has no such mapping.
    EXPECT_EQ(invoke(PrimitiveOp::EFree, PrivMode::User, {va, 1}, b)
                  .status,
              PrimStatus::NotFound);
}

TEST_F(RuntimeFixture, DestroyScrubsEverything)
{
    EnclaveId id = makeMeasuredEnclave();
    const EnclaveControl *ctl = rt->enclave(id);
    KeyId key = ctl->keyId;
    std::vector<Addr> pages = ctl->pages;

    PrimitiveResponse r =
        invoke(PrimitiveOp::EDestroy, PrivMode::Supervisor, {id});
    ASSERT_EQ(r.status, PrimStatus::Ok);
    EXPECT_EQ(rt->enclave(id)->state, EnclaveState::Destroyed);
    EXPECT_FALSE(enc.hasKey(key));
    for (Addr ppn : pages) {
        EXPECT_FALSE(bitmap.isEnclavePage(ppn));
        EXPECT_EQ(rt->ownership().lookup(ppn), nullptr);
    }
    // Destroyed enclaves reject further primitives.
    EXPECT_EQ(invoke(PrimitiveOp::EEnter, PrivMode::Supervisor, {id})
                  .status,
              PrimStatus::NotFound);
}

TEST_F(RuntimeFixture, WbReturnsRandomizedEncryptedPoolPages)
{
    makeMeasuredEnclave();
    std::size_t free_before = rt->pool().freePages();
    PrimitiveResponse r =
        invoke(PrimitiveOp::EWb, PrivMode::Supervisor, {8});
    ASSERT_EQ(r.status, PrimStatus::Ok);
    std::size_t count = r.results.at(0);
    EXPECT_GE(count, 8u);
    EXPECT_EQ(r.results.size(), 1 + count);
    EXPECT_EQ(rt->pool().freePages(), free_before - count);
    // Returned frames are no longer enclave memory.
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_FALSE(bitmap.isEnclaveAddr(r.results[1 + i]));
    EXPECT_TRUE(r.flags & kFlagFlushTlb);
}

TEST_F(RuntimeFixture, WbNeverReturnsActiveEnclavePages)
{
    // Defense 2 of the swapping countermeasure (Section IV-A).
    EnclaveId id = makeMeasuredEnclave();
    std::set<Addr> active(rt->enclave(id)->pages.begin(),
                          rt->enclave(id)->pages.end());
    for (int round = 0; round < 10; ++round) {
        PrimitiveResponse r =
            invoke(PrimitiveOp::EWb, PrivMode::Supervisor, {4});
        ASSERT_EQ(r.status, PrimStatus::Ok);
        for (std::size_t i = 1; i < r.results.size(); ++i)
            EXPECT_EQ(active.count(pageNumber(r.results[i])), 0u);
    }
}

TEST_F(RuntimeFixture, WbCountVariesAcrossCalls)
{
    makeMeasuredEnclave();
    std::set<std::uint64_t> counts;
    for (int i = 0; i < 12; ++i) {
        PrimitiveResponse r =
            invoke(PrimitiveOp::EWb, PrivMode::Supervisor, {4});
        counts.insert(r.results.at(0));
    }
    EXPECT_GT(counts.size(), 1u) << "swap size is randomized";
}

TEST_F(RuntimeFixture, AttestProducesVerifiableQuote)
{
    EnclaveId id = makeMeasuredEnclave();
    Bytes nonce(16, 0x42);
    Bytes dh_pub(32, 0x24);
    Bytes payload = nonce;
    payload.insert(payload.end(), dh_pub.begin(), dh_pub.end());
    PrimitiveResponse r =
        invoke(PrimitiveOp::EAttest, PrivMode::User, {}, id, payload);
    ASSERT_EQ(r.status, PrimStatus::Ok);

    AttestationQuote quote;
    ASSERT_TRUE(AttestationQuote::deserialize(r.payload, quote));
    EXPECT_TRUE(verifyQuote(quote,
                            rt->keyManager().endorsementPublicKey(),
                            rt->enclave(id)->measurement, nonce));
}

TEST_F(RuntimeFixture, ServiceTimesScaleWithWork)
{
    PrimitiveResponse small = invoke(PrimitiveOp::ECreate,
                                     PrivMode::Supervisor, {4, 8, 64});
    PrimitiveResponse large = invoke(PrimitiveOp::ECreate,
                                     PrivMode::Supervisor,
                                     {4, 512, 64});
    EXPECT_GT(large.completedAt, small.completedAt)
        << "larger static allocation costs more EMS time";
}

TEST_F(RuntimeFixture, SuspendReleasesKeySlot)
{
    EnclaveId id = makeMeasuredEnclave();
    KeyId key = rt->enclave(id)->keyId;
    ASSERT_TRUE(rt->suspendEnclave(id));
    EXPECT_FALSE(enc.hasKey(key));
    EXPECT_EQ(rt->enclave(id)->state, EnclaveState::Suspended);
    // Running enclaves cannot be suspended.
    EnclaveId other = makeMeasuredEnclave();
    invoke(PrimitiveOp::EEnter, PrivMode::Supervisor, {other});
    EXPECT_FALSE(rt->suspendEnclave(other));
}

} // namespace
} // namespace hypertee
