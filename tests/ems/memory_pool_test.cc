/** @file Enclave memory pool tests (allocation concealment). */

#include <gtest/gtest.h>

#include <set>

#include "ems/memory_pool.hh"

namespace hypertee
{
namespace
{

struct PoolFixture : ::testing::Test
{
    Addr nextPpn = 0x80000;
    std::uint64_t osCalls = 0;
    std::vector<Addr> returned;

    EnclaveMemoryPool::OsAllocator
    allocator()
    {
        return [this](std::size_t n) {
            ++osCalls;
            std::vector<Addr> out;
            for (std::size_t i = 0; i < n; ++i)
                out.push_back(nextPpn++);
            return out;
        };
    }

    EnclaveMemoryPool::OsReleaser
    releaser()
    {
        return [this](const std::vector<Addr> &pages) {
            returned.insert(returned.end(), pages.begin(), pages.end());
        };
    }

    EnclaveMemoryPool::Params
    smallParams()
    {
        EnclaveMemoryPool::Params p;
        p.initialPages = 64;
        p.refillBatch = 32;
        p.minThreshold = 4;
        p.maxThreshold = 12;
        return p;
    }
};

TEST_F(PoolFixture, WarmPoolServesWithoutOsCalls)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    std::uint64_t calls_after_init = osCalls;
    // Draw well under the warm size: the OS must see nothing.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(pool.allocate(2).size(), 2u);
    EXPECT_EQ(osCalls, calls_after_init)
        << "allocation events concealed from the OS";
}

TEST_F(PoolFixture, RefillsWhenCrossingThreshold)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    std::uint64_t calls_after_init = osCalls;
    // Drain enough to cross any threshold in [4, 12].
    pool.allocate(60);
    EXPECT_GT(osCalls, calls_after_init);
}

TEST_F(PoolFixture, ThresholdRerandomizesOnRefill)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    std::set<std::size_t> seen;
    for (int round = 0; round < 20; ++round) {
        seen.insert(pool.threshold());
        pool.allocate(40);
        std::vector<Addr> dummy; // keep pages out
    }
    // With a [4,12] band and 20 refills we must see variety.
    EXPECT_GT(seen.size(), 2u);
}

TEST_F(PoolFixture, PagesAreUniqueAcrossAllocations)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    std::set<Addr> seen;
    for (int i = 0; i < 30; ++i) {
        for (Addr p : pool.allocate(4)) {
            EXPECT_TRUE(seen.insert(p).second) << "page reissued";
        }
    }
}

TEST_F(PoolFixture, ReleasedPagesAreReused)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    std::vector<Addr> pages = pool.allocate(8);
    pool.release(pages);
    std::uint64_t calls = osCalls;
    std::vector<Addr> again = pool.allocate(8);
    EXPECT_EQ(osCalls, calls) << "reuse needs no OS interaction";
    EXPECT_EQ(again.size(), 8u);
}

TEST_F(PoolFixture, RandomTakeVariesCountAndPosition)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    Random rng(7);
    std::set<std::size_t> counts;
    for (int i = 0; i < 16; ++i) {
        std::vector<Addr> taken = pool.randomTake(4, 4, rng);
        counts.insert(taken.size());
        EXPECT_GE(taken.size(), 4u);
        EXPECT_LE(taken.size(), 8u);
        pool.release(taken);
    }
    EXPECT_GT(counts.size(), 1u) << "EWB page count is randomized";
}

TEST_F(PoolFixture, ReturnToOsShrinksPool)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    std::size_t before = pool.freePages();
    pool.returnToOs(16);
    EXPECT_EQ(pool.freePages(), before - 16);
    EXPECT_EQ(returned.size(), 16u);
}

TEST_F(PoolFixture, ExhaustedOsYieldsEmptyAllocation)
{
    // An OS allocator that refuses everything after the warm-up.
    bool first = true;
    auto stingy = [&](std::size_t n) {
        std::vector<Addr> out;
        if (first) {
            for (std::size_t i = 0; i < n; ++i)
                out.push_back(nextPpn++);
            first = false;
        }
        return out;
    };
    EnclaveMemoryPool pool(stingy, releaser(), smallParams());
    EXPECT_TRUE(pool.allocate(100000).empty());
}

TEST_F(PoolFixture, RebalanceDisabledIsANoOp)
{
    EnclaveMemoryPool pool(allocator(), releaser(), smallParams());
    std::size_t before = pool.freePages();
    std::uint64_t calls_before = osCalls;
    EnclaveMemoryPool::Rebalance moved = pool.rebalance();
    EXPECT_EQ(moved.refilled, 0u);
    EXPECT_EQ(moved.returned, 0u);
    EXPECT_EQ(pool.freePages(), before);
    EXPECT_EQ(osCalls, calls_before);
    EXPECT_EQ(pool.osReturns(), 0u);
}

TEST_F(PoolFixture, RebalanceRefillsUpFromLowWatermark)
{
    EnclaveMemoryPool::Params p = smallParams();
    p.lowWatermark = 48;
    p.highWatermark = 512;
    EnclaveMemoryPool pool(allocator(), releaser(), p);
    // Drain below the low watermark without tripping the demand
    // threshold path (threshold <= 12 < 48).
    while (pool.freePages() >= p.lowWatermark - 8)
        ASSERT_EQ(pool.allocate(1).size(), 1u);
    std::uint64_t requests_before = pool.osRequests();
    EnclaveMemoryPool::Rebalance moved = pool.rebalance();
    EXPECT_GT(moved.refilled, 0u);
    EXPECT_EQ(moved.returned, 0u);
    EXPECT_GE(pool.freePages(), p.lowWatermark);
    EXPECT_EQ(pool.osRequests(), requests_before + 1)
        << "one batched OS request, not per-page faults";
}

TEST_F(PoolFixture, RebalanceShedsDownToHighWatermark)
{
    EnclaveMemoryPool::Params p = smallParams();
    p.initialPages = 64;
    p.lowWatermark = 8;
    p.highWatermark = 40;
    EnclaveMemoryPool pool(allocator(), releaser(), p);
    ASSERT_GT(pool.freePages(), p.highWatermark);
    EnclaveMemoryPool::Rebalance moved = pool.rebalance();
    EXPECT_EQ(moved.refilled, 0u);
    EXPECT_GT(moved.returned, 0u);
    EXPECT_EQ(pool.freePages(), p.highWatermark);
    EXPECT_EQ(pool.osReturns(), moved.returned);
    EXPECT_EQ(returned.size(), moved.returned);
}

TEST_F(PoolFixture, RebalanceInsideBandMovesNothing)
{
    EnclaveMemoryPool::Params p = smallParams();
    p.lowWatermark = 16;
    p.highWatermark = 128;
    EnclaveMemoryPool pool(allocator(), releaser(), p);
    ASSERT_GE(pool.freePages(), p.lowWatermark);
    ASSERT_LE(pool.freePages(), p.highWatermark);
    EnclaveMemoryPool::Rebalance moved = pool.rebalance();
    EXPECT_EQ(moved.refilled, 0u);
    EXPECT_EQ(moved.returned, 0u);
}

} // namespace
} // namespace hypertee
