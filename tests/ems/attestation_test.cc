/** @file Attestation protocol and sealing tests (Section VI). */

#include <gtest/gtest.h>

#include "ems/attestation.hh"

namespace hypertee
{
namespace
{

EFuse
testFuse(std::uint8_t seed)
{
    EFuse f;
    f.endorsementSeed = Bytes(32, seed);
    f.sealedKey = Bytes(32, static_cast<std::uint8_t>(seed + 1));
    return f;
}

struct AttestFixture : ::testing::Test
{
    KeyManager km{testFuse(3)};
    Bytes platformMeas = Bytes(32, 0xaa);
    Bytes enclaveMeas = Bytes(32, 0xbb);
    Bytes salt = bytesFromString("ak-salt");
    Bytes dhPub = Bytes(32, 0x11);
    Bytes nonce = Bytes(16, 0x77);

    AttestationQuote
    quote()
    {
        return buildQuote(km, platformMeas, enclaveMeas, salt, dhPub,
                          nonce);
    }
};

TEST_F(AttestFixture, ValidQuoteVerifies)
{
    EXPECT_TRUE(verifyQuote(quote(), km.endorsementPublicKey(),
                            enclaveMeas, nonce));
}

TEST_F(AttestFixture, SerializationRoundTrips)
{
    AttestationQuote q = quote();
    Bytes wire = q.serialize();
    AttestationQuote back;
    ASSERT_TRUE(AttestationQuote::deserialize(wire, back));
    EXPECT_EQ(back.enclaveMeasurement, q.enclaveMeasurement);
    EXPECT_EQ(back.platformSig, q.platformSig);
    EXPECT_TRUE(verifyQuote(back, km.endorsementPublicKey(), enclaveMeas,
                            nonce));
}

TEST_F(AttestFixture, TruncatedWireFormatRejected)
{
    Bytes wire = quote().serialize();
    AttestationQuote back;
    for (std::size_t cut : {1u, 10u, 50u}) {
        Bytes shortened(wire.begin(), wire.end() - cut);
        EXPECT_FALSE(AttestationQuote::deserialize(shortened, back));
    }
    wire.push_back(0);
    EXPECT_FALSE(AttestationQuote::deserialize(wire, back))
        << "trailing bytes rejected";
}

TEST_F(AttestFixture, WrongEkRejected)
{
    KeyManager other(testFuse(9));
    EXPECT_FALSE(verifyQuote(quote(), other.endorsementPublicKey(),
                             enclaveMeas, nonce));
}

TEST_F(AttestFixture, TamperedMeasurementRejected)
{
    // Attacker swaps in a different enclave measurement: the AK
    // signature no longer covers it.
    AttestationQuote q = quote();
    q.enclaveMeasurement = Bytes(32, 0xcc);
    EXPECT_FALSE(verifyQuote(q, km.endorsementPublicKey(),
                             q.enclaveMeasurement, nonce));
}

TEST_F(AttestFixture, MeasurementMismatchRejected)
{
    EXPECT_FALSE(verifyQuote(quote(), km.endorsementPublicKey(),
                             Bytes(32, 0xdd), nonce));
}

TEST_F(AttestFixture, ReplayedNonceRejected)
{
    EXPECT_FALSE(verifyQuote(quote(), km.endorsementPublicKey(),
                             enclaveMeas, Bytes(16, 0x88)));
}

TEST_F(AttestFixture, SwappedAkRejected)
{
    // Attacker substitutes their own AK public key: the EK chain
    // signature breaks.
    AttestationQuote q = quote();
    q.akPublicKey = KeyManager(testFuse(9)).attestationPublicKey(salt);
    EXPECT_FALSE(verifyQuote(q, km.endorsementPublicKey(), enclaveMeas,
                             nonce));
}

TEST_F(AttestFixture, AkPublicKeyUnderDifferentSaltRejected)
{
    // Same device, but the AK public key was derived under another
    // salt: AK = KDF(SK, salt), so the enclave signature no longer
    // matches and the EK certificate chain breaks too.
    AttestationQuote q = quote();
    q.akPublicKey =
        km.attestationPublicKey(bytesFromString("other-salt"));
    EXPECT_FALSE(verifyQuote(q, km.endorsementPublicKey(), enclaveMeas,
                             nonce));
}

TEST_F(AttestFixture, EnclaveSigUnderDifferentSaltRejected)
{
    // The enclave body is re-signed with an AK derived under a
    // different salt while the quoted AK public key is unchanged:
    // the signature must not verify.
    AttestationQuote q = quote();
    Bytes body = q.enclaveMeasurement;
    body.insert(body.end(), q.dhPublic.begin(), q.dhPublic.end());
    body.insert(body.end(), q.verifierNonce.begin(),
                q.verifierNonce.end());
    q.enclaveSig = km.signWithAk(bytesFromString("other-salt"), body);
    EXPECT_FALSE(verifyQuote(q, km.endorsementPublicKey(), enclaveMeas,
                             nonce));
}

TEST(LocalAttestation, ReportRoundTrip)
{
    KeyManager km(testFuse(5));
    Bytes challenger(32, 1), verifier(32, 2);
    Bytes cert = localReportCertificate(km, challenger, verifier);
    EXPECT_TRUE(verifyLocalReport(km, challenger, verifier, cert));
}

TEST(LocalAttestation, CertBoundToBothMeasurements)
{
    KeyManager km(testFuse(5));
    Bytes challenger(32, 1), verifier(32, 2);
    Bytes cert = localReportCertificate(km, challenger, verifier);
    EXPECT_FALSE(verifyLocalReport(km, Bytes(32, 3), verifier, cert));
    EXPECT_FALSE(verifyLocalReport(km, challenger, Bytes(32, 3), cert));
}

TEST(LocalAttestation, CertBoundToDevice)
{
    KeyManager km1(testFuse(5)), km2(testFuse(6));
    Bytes challenger(32, 1), verifier(32, 2);
    Bytes cert = localReportCertificate(km1, challenger, verifier);
    EXPECT_FALSE(verifyLocalReport(km2, challenger, verifier, cert))
        << "local attestation only works on the same platform";
}

TEST(Sealing, RoundTrip)
{
    KeyManager km(testFuse(7));
    Bytes meas(32, 0x10);
    Bytes secret = bytesFromString("model weights");
    SealedBlob blob = seal(km, meas, secret, 42);
    EXPECT_NE(blob.ciphertext, secret);
    Bytes out;
    ASSERT_TRUE(unseal(km, meas, blob, out));
    EXPECT_EQ(out, secret);
}

TEST(Sealing, TamperDetected)
{
    KeyManager km(testFuse(7));
    Bytes meas(32, 0x10);
    SealedBlob blob = seal(km, meas, bytesFromString("data"), 1);
    blob.ciphertext[0] ^= 1;
    Bytes out;
    EXPECT_FALSE(unseal(km, meas, blob, out));
    EXPECT_TRUE(out.empty());
}

TEST(Sealing, BoundToMeasurement)
{
    // A different (modified) enclave cannot unseal.
    KeyManager km(testFuse(7));
    SealedBlob blob = seal(km, Bytes(32, 1), bytesFromString("data"), 1);
    Bytes out;
    EXPECT_FALSE(unseal(km, Bytes(32, 2), blob, out));
}

TEST(Sealing, SerializationRoundTrips)
{
    KeyManager km(testFuse(7));
    SealedBlob blob = seal(km, Bytes(32, 1), bytesFromString("x"), 5);
    Bytes wire = blob.serialize();
    SealedBlob back;
    ASSERT_TRUE(SealedBlob::deserialize(wire, back));
    Bytes out;
    EXPECT_TRUE(unseal(km, Bytes(32, 1), back, out));
}

} // namespace
} // namespace hypertee
