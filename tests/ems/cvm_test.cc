/** @file CVM lifecycle tests (Section IX: snapshot, restore,
 *  migration). */

#include <gtest/gtest.h>

#include "ems/cvm.hh"

namespace hypertee
{
namespace
{

EFuse
fuse(std::uint8_t seed)
{
    EFuse f;
    f.endorsementSeed = Bytes(32, seed);
    f.sealedKey = Bytes(32, static_cast<std::uint8_t>(seed + 1));
    return f;
}

std::vector<Bytes>
guestImage(std::size_t pages, std::uint8_t fill)
{
    std::vector<Bytes> image;
    for (std::size_t i = 0; i < pages; ++i)
        image.push_back(
            Bytes(pageSize, static_cast<std::uint8_t>(fill + i)));
    return image;
}

struct CvmFixture : ::testing::Test
{
    KeyManager km{fuse(5)};
    Bytes platform = Bytes(32, 0x77);
    CvmManager mgr{&km, platform, 101};
};

TEST_F(CvmFixture, CreateAndReadBack)
{
    CvmId id = mgr.create(guestImage(4, 0x10));
    ASSERT_NE(id, 0u);
    EXPECT_EQ(mgr.pageCount(id), 4u);
    EXPECT_EQ(mgr.readPage(id, 2), Bytes(pageSize, 0x12));
    EXPECT_TRUE(mgr.readPage(id, 9).empty());
}

TEST_F(CvmFixture, SnapshotIsEncrypted)
{
    CvmId id = mgr.create(guestImage(4, 0x10));
    CvmSnapshot snap = mgr.snapshot(id);
    ASSERT_EQ(snap.encryptedPages.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NE(snap.encryptedPages[i], mgr.readPage(id, i))
            << "page " << i << " left in plaintext";
}

TEST_F(CvmFixture, SnapshotRestoresExactly)
{
    CvmId id = mgr.create(guestImage(4, 0x10));
    CvmSnapshot snap = mgr.snapshot(id);
    mgr.writePage(id, 1, Bytes(pageSize, 0xff)); // diverge afterwards

    CvmId restored = mgr.restore(snap);
    ASSERT_NE(restored, 0u);
    EXPECT_EQ(mgr.readPage(restored, 1), Bytes(pageSize, 0x11))
        << "restore returns the snapshot-time content";
}

TEST_F(CvmFixture, TamperedSnapshotRejected)
{
    CvmId id = mgr.create(guestImage(4, 0x10));
    CvmSnapshot snap = mgr.snapshot(id);
    snap.encryptedPages[2][17] ^= 1; // disk corruption / attacker
    EXPECT_EQ(mgr.restore(snap), 0u);
}

TEST_F(CvmFixture, TruncatedSnapshotRejected)
{
    CvmId id = mgr.create(guestImage(4, 0x10));
    CvmSnapshot snap = mgr.snapshot(id);
    snap.encryptedPages.pop_back();
    EXPECT_EQ(mgr.restore(snap), 0u);
}

TEST_F(CvmFixture, WritesTrackDirtyStateAcrossSnapshots)
{
    CvmId id = mgr.create(guestImage(2, 0x20));
    mgr.writePage(id, 0, Bytes(pageSize, 0xab));
    CvmSnapshot snap = mgr.snapshot(id);
    CvmId restored = mgr.restore(snap);
    ASSERT_NE(restored, 0u);
    EXPECT_EQ(mgr.readPage(restored, 0), Bytes(pageSize, 0xab));
}

TEST_F(CvmFixture, ForeignSnapshotRejected)
{
    // A snapshot produced by one EMS cannot be restored by another:
    // the key and root never left the source.
    CvmId id = mgr.create(guestImage(2, 0x30));
    CvmSnapshot snap = mgr.snapshot(id);
    KeyManager km2(fuse(9));
    CvmManager other(&km2, platform, 102);
    EXPECT_EQ(other.restore(snap), 0u);
}

struct MigrationFixture : ::testing::Test
{
    Bytes platform = Bytes(32, 0x77);
    KeyManager sourceKm{fuse(5)};
    KeyManager destKm{fuse(9)};
    CvmManager source{&sourceKm, platform, 201};
    CvmManager dest{&destKm, platform, 202};
};

TEST_F(MigrationFixture, MigrationMovesTheCvm)
{
    CvmId id = source.create(guestImage(4, 0x40));
    Bytes dest_priv;
    Bytes dest_pub = dest.makeMigrationDh(dest_priv);

    CvmMigrationBundle bundle = source.migrateOut(id, dest_pub);
    CvmId moved = dest.migrateIn(
        bundle, sourceKm.endorsementPublicKey(), dest_priv);
    ASSERT_NE(moved, 0u);
    EXPECT_EQ(dest.readPage(moved, 3), Bytes(pageSize, 0x43));
}

TEST_F(MigrationFixture, UnattestedSourceRejected)
{
    CvmId id = source.create(guestImage(2, 0x40));
    Bytes dest_priv;
    Bytes dest_pub = dest.makeMigrationDh(dest_priv);
    CvmMigrationBundle bundle = source.migrateOut(id, dest_pub);

    // The destination checks against the CA-certified EK of some
    // *other* platform: a rogue source fails attestation.
    KeyManager rogue(fuse(33));
    EXPECT_EQ(dest.migrateIn(bundle, rogue.endorsementPublicKey(),
                             dest_priv),
              0u);
}

TEST_F(MigrationFixture, TamperedBundleRejected)
{
    CvmId id = source.create(guestImage(2, 0x40));
    Bytes dest_priv;
    Bytes dest_pub = dest.makeMigrationDh(dest_priv);

    CvmMigrationBundle b1 = source.migrateOut(id, dest_pub);
    b1.encryptedSecrets[0] ^= 1;
    EXPECT_EQ(dest.migrateIn(b1, sourceKm.endorsementPublicKey(),
                             dest_priv),
              0u)
        << "secrets MAC must catch tampering";

    CvmMigrationBundle b2 = source.migrateOut(id, dest_pub);
    b2.snapshot.encryptedPages[1][0] ^= 1;
    EXPECT_EQ(dest.migrateIn(b2, sourceKm.endorsementPublicKey(),
                             dest_priv),
              0u)
        << "Merkle root must catch page tampering";
}

TEST_F(MigrationFixture, WrongDhPrivateCannotUnwrap)
{
    CvmId id = source.create(guestImage(2, 0x40));
    Bytes dest_priv;
    Bytes dest_pub = dest.makeMigrationDh(dest_priv);
    CvmMigrationBundle bundle = source.migrateOut(id, dest_pub);

    Bytes wrong_priv(32, 0x55);
    EXPECT_EQ(dest.migrateIn(bundle, sourceKm.endorsementPublicKey(),
                             wrong_priv),
              0u);
}

TEST_F(MigrationFixture, BundleLeaksNoPlaintext)
{
    auto image = guestImage(2, 0x40);
    CvmId id = source.create(image);
    Bytes dest_priv;
    Bytes dest_pub = dest.makeMigrationDh(dest_priv);
    CvmMigrationBundle bundle = source.migrateOut(id, dest_pub);
    for (std::size_t i = 0; i < image.size(); ++i)
        EXPECT_NE(bundle.snapshot.encryptedPages[i], image[i]);
}

} // namespace
} // namespace hypertee
