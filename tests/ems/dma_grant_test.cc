/** @file Enclave-peripheral DMA grant tests (Section V-B). */

#include <gtest/gtest.h>

#include "core/sdk.hh"
#include "core/system.hh"

namespace hypertee
{
namespace
{

struct DmaGrantTest : ::testing::Test
{
    SystemParams
    params()
    {
        SystemParams p;
        p.csMemSize = 256ULL * 1024 * 1024;
        p.csCoreCount = 2;
        return p;
    }

    HyperTeeSystem sys{params()};
    EnclaveHandle user{sys, 0, EnclaveConfig{}};
    EnclaveHandle driver{sys, 1, EnclaveConfig{}};
    ShmId channel = 0;

    void
    SetUp() override
    {
        for (EnclaveHandle *e : {&user, &driver}) {
            e->addImage(Bytes(pageSize, 0x42),
                        EnclaveLayout::codeBase, PteRead | PteExec);
            e->measure();
        }
        user.enter();
        channel = user.shmCreate(8, PteRead | PteWrite);
        ASSERT_NE(channel, 0u);
        ASSERT_TRUE(user.shmShare(channel, driver.id(),
                                  PteRead | PteWrite));
        user.exit();
    }

    Addr
    channelPa(std::size_t page = 0)
    {
        return sys.ems().shm(channel)->pages.at(page) << pageShift;
    }
};

TEST_F(DmaGrantTest, DriverGrantOpensExactWindow)
{
    std::size_t windows = sys.ems().grantDmaAccess(
        driver.id(), channel, 1, DmaRead | DmaWrite);
    EXPECT_GE(windows, 1u);
    // Device 1 reaches every channel page...
    for (std::size_t p = 0; p < 8; ++p)
        EXPECT_TRUE(sys.ihub().dmaAccess(1, channelPa(p), 64, true));
    // ...and nothing adjacent.
    EXPECT_FALSE(
        sys.ihub().dmaAccess(1, channelPa(7) + pageSize, 64, false));
    EXPECT_FALSE(sys.ihub().dmaAccess(1, channelPa(0) - 64, 64, false));
}

TEST_F(DmaGrantTest, OtherDevicesStayBlocked)
{
    sys.ems().grantDmaAccess(driver.id(), channel, 1, DmaRead);
    EXPECT_FALSE(sys.ihub().dmaAccess(2, channelPa(), 64, false));
}

TEST_F(DmaGrantTest, ReadOnlyGrantBlocksDeviceWrites)
{
    sys.ems().grantDmaAccess(driver.id(), channel, 1, DmaRead);
    EXPECT_TRUE(sys.ihub().dmaAccess(1, channelPa(), 64, false));
    EXPECT_FALSE(sys.ihub().dmaAccess(1, channelPa(), 64, true));
}

TEST_F(DmaGrantTest, UnauthorizedEnclaveCannotGrant)
{
    EnclaveHandle intruder(sys, 0, EnclaveConfig{});
    intruder.addImage(Bytes(pageSize, 0x66), EnclaveLayout::codeBase,
                      PteRead | PteExec);
    intruder.measure();
    EXPECT_EQ(sys.ems().grantDmaAccess(intruder.id(), channel, 1,
                                       DmaRead),
              0u)
        << "no legal connection: no grant";
    EXPECT_FALSE(sys.ihub().dmaAccess(1, channelPa(), 64, false));
}

TEST_F(DmaGrantTest, UnknownShmRejected)
{
    EXPECT_EQ(sys.ems().grantDmaAccess(driver.id(), 777, 1, DmaRead),
              0u);
}

TEST_F(DmaGrantTest, DmaCannotReachPrivateEnclaveMemory)
{
    // Even with a window for the shared channel, the victim's
    // private pages remain unreachable by the device.
    sys.ems().grantDmaAccess(driver.id(), channel, 1,
                             DmaRead | DmaWrite);
    const EnclaveControl *ctl = sys.ems().enclave(user.id());
    for (Addr ppn : ctl->pages) {
        EXPECT_FALSE(
            sys.ihub().dmaAccess(1, ppn << pageShift, 64, false));
    }
}

} // namespace
} // namespace hypertee
