/** @file Page ownership table tests. */

#include <gtest/gtest.h>

#include "ems/ownership.hh"

namespace hypertee
{
namespace
{

TEST(Ownership, ClaimAndLookup)
{
    PageOwnershipTable table;
    EXPECT_TRUE(table.claim(100, 1));
    const PageOwner *owner = table.lookup(100);
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(owner->owner, 1u);
    EXPECT_EQ(owner->kind, PageKind::Private);
    EXPECT_TRUE(table.ownedBy(100, 1));
    EXPECT_FALSE(table.ownedBy(100, 2));
}

TEST(Ownership, DoubleClaimRejected)
{
    // The inter-enclave isolation check (Section IV-B).
    PageOwnershipTable table;
    EXPECT_TRUE(table.claim(100, 1));
    EXPECT_FALSE(table.claim(100, 2));
    EXPECT_EQ(table.lookup(100)->owner, 1u);
    EXPECT_EQ(table.conflicts(), 1u);
}

TEST(Ownership, ReleaseAllowsReclaim)
{
    PageOwnershipTable table;
    table.claim(100, 1);
    EXPECT_TRUE(table.release(100));
    EXPECT_EQ(table.lookup(100), nullptr);
    EXPECT_TRUE(table.claim(100, 2));
    EXPECT_FALSE(table.release(555)) << "releasing unowned page";
}

TEST(Ownership, EnumeratesPagesOfEnclave)
{
    PageOwnershipTable table;
    table.claim(1, 7);
    table.claim(2, 7);
    table.claim(3, 8);
    auto pages = table.pagesOf(7);
    EXPECT_EQ(pages.size(), 2u);
}

TEST(Ownership, TracksSharedPagesByShm)
{
    PageOwnershipTable table;
    table.claim(10, 1, PageKind::Shared, 55);
    table.claim(11, 1, PageKind::Shared, 55);
    table.claim(12, 1, PageKind::Shared, 56);
    EXPECT_EQ(table.pagesOfShm(55).size(), 2u);
    EXPECT_EQ(table.pagesOfShm(56).size(), 1u);
    EXPECT_EQ(table.lookup(10)->kind, PageKind::Shared);
}

TEST(Ownership, PageTableKindTracked)
{
    PageOwnershipTable table;
    table.claim(20, 3, PageKind::PageTable);
    EXPECT_EQ(table.lookup(20)->kind, PageKind::PageTable);
}

} // namespace
} // namespace hypertee
