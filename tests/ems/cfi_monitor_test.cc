/** @file EMS-side CFI monitor tests (Section IX). */

#include <gtest/gtest.h>

#include "ems/cfi_monitor.hh"

namespace hypertee
{
namespace
{

TEST(CfiTransferBuffer, RecordsAndDrains)
{
    CfiTransferBuffer buf(4);
    EXPECT_TRUE(buf.record(0x100, 0x200));
    EXPECT_TRUE(buf.record(0x204, 0x300));
    EXPECT_EQ(buf.size(), 2u);
    auto transfers = buf.drain();
    ASSERT_EQ(transfers.size(), 2u);
    EXPECT_EQ(transfers[0].source, 0x100u);
    EXPECT_EQ(transfers[1].target, 0x300u);
    EXPECT_EQ(buf.size(), 0u);
}

TEST(CfiTransferBuffer, SignalsOverflow)
{
    CfiTransferBuffer buf(2);
    EXPECT_TRUE(buf.record(1, 2));
    EXPECT_FALSE(buf.record(3, 4)) << "buffer full: force a pass";
    EXPECT_TRUE(buf.full());
    buf.drain();
    EXPECT_FALSE(buf.full());
}

struct CfiFixture : ::testing::Test
{
    CfiMonitor monitor;

    void
    SetUp() override
    {
        // A tiny CFG: main -> helper -> main, plus an indirect call
        // table with two functions.
        monitor.allowEdge(0x1000, 0x2000); // call helper
        monitor.allowEdge(0x2040, 0x1004); // return
        monitor.allowTarget(0x3000);       // fn ptr A
        monitor.allowTarget(0x4000);       // fn ptr B
    }
};

TEST_F(CfiFixture, LegalFlowValidates)
{
    std::vector<CfiTransfer> good = {
        {0x1000, 0x2000}, {0x2040, 0x1004},
        {0x1010, 0x3000}, // indirect call to allowed target
        {0x1020, 0x4000},
    };
    EXPECT_TRUE(monitor.validate(good));
    EXPECT_EQ(monitor.violations(), 0u);
    EXPECT_EQ(monitor.checkedTransfers(), 4u);
}

TEST_F(CfiFixture, RopStyleEdgeDetected)
{
    // A corrupted return address jumping into a gadget.
    std::vector<CfiTransfer> rop = {
        {0x1000, 0x2000},
        {0x2040, 0x5a5a}, // not in the CFG
    };
    EXPECT_FALSE(monitor.validate(rop));
    EXPECT_EQ(monitor.violations(), 1u);
    EXPECT_EQ(monitor.lastViolation().target, 0x5a5au);
}

TEST_F(CfiFixture, HijackedIndirectCallDetected)
{
    // Function-pointer overwrite to a non-entry address.
    std::vector<CfiTransfer> jop = {{0x1010, 0x3008}};
    EXPECT_FALSE(monitor.validate(jop));
}

TEST_F(CfiFixture, ValidationStopsAtFirstViolation)
{
    std::vector<CfiTransfer> flow = {
        {0x1000, 0x2000},
        {0x2040, 0x6666}, // violation
        {0x1010, 0x3000}, // never checked
    };
    EXPECT_FALSE(monitor.validate(flow));
    EXPECT_EQ(monitor.checkedTransfers(), 2u);
}

TEST_F(CfiFixture, BufferToMonitorPipeline)
{
    CfiTransferBuffer buf(8);
    buf.record(0x1000, 0x2000);
    buf.record(0x2040, 0x1004);
    EXPECT_TRUE(monitor.validate(buf.drain()));

    buf.record(0x2040, 0xdead);
    EXPECT_FALSE(monitor.validate(buf.drain()));
}

} // namespace
} // namespace hypertee
