/** @file Key hierarchy tests (Section VI). */

#include <gtest/gtest.h>

#include "crypto/ed25519.hh"
#include "ems/key_manager.hh"

namespace hypertee
{
namespace
{

EFuse
testFuse(std::uint8_t seed)
{
    EFuse f;
    f.endorsementSeed = Bytes(32, seed);
    f.sealedKey = Bytes(32, static_cast<std::uint8_t>(seed + 1));
    return f;
}

TEST(KeyManager, EkSignaturesVerifyAgainstEkPublic)
{
    KeyManager km(testFuse(1));
    Bytes msg = bytesFromString("platform-measurement");
    Bytes sig = km.signWithEk(msg);
    EXPECT_TRUE(ed25519Verify(km.endorsementPublicKey(), msg, sig));
}

TEST(KeyManager, AkDerivationIsSaltDependent)
{
    KeyManager km(testFuse(1));
    Bytes salt_a = bytesFromString("salt-a");
    Bytes salt_b = bytesFromString("salt-b");
    EXPECT_NE(km.attestationPublicKey(salt_a),
              km.attestationPublicKey(salt_b));

    Bytes msg = bytesFromString("quote");
    Bytes sig = km.signWithAk(salt_a, msg);
    EXPECT_TRUE(
        ed25519Verify(km.attestationPublicKey(salt_a), msg, sig));
    EXPECT_FALSE(
        ed25519Verify(km.attestationPublicKey(salt_b), msg, sig));
}

TEST(KeyManager, DerivedKeysAreDomainSeparated)
{
    KeyManager km(testFuse(1));
    Bytes meas = Bytes(32, 0x42);
    Bytes mem = km.memoryKey(meas);
    Bytes sealing = km.sealingKey(meas);
    Bytes report = km.reportKey(meas);
    EXPECT_EQ(mem.size(), 16u);
    EXPECT_EQ(sealing.size(), 32u);
    EXPECT_NE(Bytes(sealing.begin(), sealing.begin() + 16), mem);
    EXPECT_NE(sealing, report);
}

TEST(KeyManager, KdfLabelsPairwiseDistinct)
{
    // Same SK, same context bytes: only the KDF label differs, so
    // every pair of derived keys must still be distinct. Compare on
    // a common 16-byte prefix so the 16- and 32-byte outputs are
    // directly comparable.
    KeyManager km(testFuse(1));
    Bytes ctx(32, 0x42);
    auto prefix16 = [](const Bytes &k) {
        return Bytes(k.begin(), k.begin() + 16);
    };
    std::vector<Bytes> keys = {
        prefix16(km.memoryKey(ctx)),
        prefix16(km.sealingKey(ctx)),
        prefix16(km.reportKey(ctx)),
        prefix16(km.attestationKeySeed(ctx)),
    };
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
}

TEST(KeyManager, KeysAreMeasurementBound)
{
    KeyManager km(testFuse(1));
    EXPECT_NE(km.sealingKey(Bytes(32, 1)), km.sealingKey(Bytes(32, 2)));
    EXPECT_NE(km.memoryKey(Bytes(32, 1)), km.memoryKey(Bytes(32, 2)));
}

TEST(KeyManager, KeysAreDeviceBound)
{
    KeyManager km1(testFuse(1)), km2(testFuse(9));
    Bytes meas(32, 0x55);
    EXPECT_NE(km1.sealingKey(meas), km2.sealingKey(meas));
    EXPECT_NE(km1.endorsementPublicKey(), km2.endorsementPublicKey());
}

TEST(KeyManager, SharedMemoryKeyBindsSenderAndShm)
{
    KeyManager km(testFuse(1));
    EXPECT_NE(km.sharedMemoryKey(1, 1), km.sharedMemoryKey(1, 2));
    EXPECT_NE(km.sharedMemoryKey(1, 1), km.sharedMemoryKey(2, 1));
    EXPECT_EQ(km.sharedMemoryKey(3, 7), km.sharedMemoryKey(3, 7));
}

TEST(KeyManagerDeath, RejectsShortFuseKeys)
{
    EFuse bad;
    bad.endorsementSeed = Bytes(16, 1);
    bad.sealedKey = Bytes(32, 2);
    EXPECT_DEATH(
        {
            KeyManager km(bad);
            (void)km;
        },
        "32 bytes");
}

} // namespace
} // namespace hypertee
