/** @file Shared-memory management tests (Section V). */

#include <gtest/gtest.h>

#include "ems/runtime.hh"

namespace hypertee
{
namespace
{

constexpr Addr kCsBase = 0x8000'0000;
constexpr Addr kCsSize = 256 * 1024 * 1024;
constexpr Addr kEmsBase = 0x10'0000'0000ULL;
constexpr Addr kEmsSize = 16 * 1024 * 1024;

struct ShmFixture : ::testing::Test
{
    PhysicalMemory csMem{kCsBase, kCsSize};
    PhysicalMemory emsMem{kEmsBase, kEmsSize};
    EnclaveBitmap bitmap{&csMem, kCsBase};
    MemoryEncryptionEngine enc{64};
    IHub hub{&csMem, &emsMem, &bitmap, &enc};
    EmsPort &port = hub.emsPort();
    Addr frameCursor = kCsBase + 0x100000;
    std::unique_ptr<EmsRuntime> rt;
    std::uint64_t reqId = 0;
    EnclaveId sender = 0, receiver = 0, attacker = 0;

    void
    SetUp() override
    {
        EFuse fuse;
        fuse.endorsementSeed = Bytes(32, 1);
        fuse.sealedKey = Bytes(32, 2);
        rt = std::make_unique<EmsRuntime>(
            &port, &csMem, KeyManager(fuse), EmsRuntimeParams{},
            [this](std::size_t n) {
                std::vector<Addr> out;
                for (std::size_t i = 0; i < n; ++i) {
                    out.push_back(pageNumber(frameCursor));
                    frameCursor += pageSize;
                }
                return out;
            },
            nullptr);
        Bytes image = bytesFromString("rt"), fw = bytesFromString("fw");
        ASSERT_TRUE(rt->secureBoot(image, Sha256::digest(image), fw,
                                   Sha256::digest(fw)));
        sender = makeEnclave(0x90);
        receiver = makeEnclave(0x91);
        attacker = makeEnclave(0x92);
    }

    PrimitiveResponse
    invoke(PrimitiveOp op, PrivMode mode,
           std::vector<std::uint64_t> args, EnclaveId caller = 0,
           Bytes payload = {})
    {
        PrimitiveRequest req;
        req.reqId = ++reqId;
        req.op = op;
        req.mode = mode;
        req.args = std::move(args);
        req.caller = caller;
        req.payload = std::move(payload);
        return rt->handle(req);
    }

    EnclaveId
    makeEnclave(std::uint8_t fill)
    {
        PrimitiveResponse r = invoke(PrimitiveOp::ECreate,
                                     PrivMode::Supervisor, {4, 8, 64});
        EXPECT_EQ(r.status, PrimStatus::Ok);
        EnclaveId id = static_cast<EnclaveId>(r.results.at(0));
        invoke(PrimitiveOp::EAdd, PrivMode::Supervisor,
               {id, EnclaveLayout::codeBase, PteRead | PteExec}, 0,
               Bytes(pageSize, fill));
        invoke(PrimitiveOp::EMeas, PrivMode::Supervisor, {id});
        return id;
    }

    ShmId
    createShm(std::size_t pages = 4,
              std::uint64_t perms = PteRead | PteWrite)
    {
        PrimitiveResponse r = invoke(PrimitiveOp::EShmGet,
                                     PrivMode::User, {pages, perms},
                                     sender);
        EXPECT_EQ(r.status, PrimStatus::Ok);
        return static_cast<ShmId>(r.results.at(0));
    }
};

TEST_F(ShmFixture, CreateMarksPagesSharedAndProtected)
{
    ShmId id = createShm();
    const ShmControl *shm = rt->shm(id);
    ASSERT_NE(shm, nullptr);
    EXPECT_EQ(shm->creator, sender);
    EXPECT_EQ(shm->pages.size(), 4u);
    EXPECT_NE(shm->keyId, 0);
    EXPECT_TRUE(enc.hasKey(shm->keyId));
    for (Addr ppn : shm->pages) {
        EXPECT_TRUE(bitmap.isEnclavePage(ppn));
        const PageOwner *owner = rt->ownership().lookup(ppn);
        ASSERT_NE(owner, nullptr);
        EXPECT_EQ(owner->kind, PageKind::Shared);
        EXPECT_EQ(owner->shm, id);
    }
}

TEST_F(ShmFixture, ShmKeyDiffersFromPrivateKeys)
{
    ShmId id = createShm();
    EXPECT_NE(rt->shm(id)->keyId, rt->enclave(sender)->keyId);
}

TEST_F(ShmFixture, CreatorCanAttachImmediately)
{
    ShmId id = createShm();
    PrimitiveResponse r =
        invoke(PrimitiveOp::EShmAt, PrivMode::User,
               {id, PteRead | PteWrite}, sender);
    ASSERT_EQ(r.status, PrimStatus::Ok);
    Addr va = r.results.at(0);
    WalkResult walk = rt->enclavePageTable(sender)->walk(va);
    ASSERT_TRUE(walk.valid);
    EXPECT_EQ(walk.keyId, rt->shm(id)->keyId)
        << "shared mapping uses the shm key domain";
}

TEST_F(ShmFixture, UnauthorizedAttachRejected)
{
    ShmId id = createShm();
    PrimitiveResponse r = invoke(PrimitiveOp::EShmAt, PrivMode::User,
                                 {id, PteRead}, receiver);
    EXPECT_EQ(r.status, PrimStatus::NotAuthorized);
    EXPECT_GT(rt->shmGuessRejections(), 0u);
}

TEST_F(ShmFixture, BruteForceShmIdGuessingFails)
{
    createShm();
    // Attacker probes a range of ShmIDs it was never granted.
    int granted = 0;
    for (ShmId guess = 100; guess < 150; ++guess) {
        PrimitiveResponse r = invoke(PrimitiveOp::EShmAt,
                                     PrivMode::User, {guess, PteRead},
                                     attacker);
        granted += (r.status == PrimStatus::Ok);
    }
    EXPECT_EQ(granted, 0);
    EXPECT_GE(rt->shmGuessRejections(), 50u);
}

TEST_F(ShmFixture, ShareThenAttachSucceeds)
{
    ShmId id = createShm();
    ASSERT_EQ(invoke(PrimitiveOp::EShmShr, PrivMode::User,
                     {id, receiver, PteRead | PteWrite}, sender)
                  .status,
              PrimStatus::Ok);
    PrimitiveResponse r =
        invoke(PrimitiveOp::EShmAt, PrivMode::User,
               {id, PteRead | PteWrite}, receiver);
    ASSERT_EQ(r.status, PrimStatus::Ok);
    EXPECT_TRUE(rt->shm(id)->attached.count(receiver));
}

TEST_F(ShmFixture, OnlyCreatorMayShare)
{
    ShmId id = createShm();
    invoke(PrimitiveOp::EShmShr, PrivMode::User,
           {id, receiver, PteRead}, sender);
    // The receiver, though authorized to attach, may not grant the
    // attacker access.
    EXPECT_EQ(invoke(PrimitiveOp::EShmShr, PrivMode::User,
                     {id, attacker, PteRead}, receiver)
                  .status,
              PrimStatus::NotAuthorized);
}

TEST_F(ShmFixture, PermissionClampedToGrant)
{
    // Section V-C: read-only receivers cannot obtain write mappings.
    ShmId id = createShm(4, PteRead | PteWrite);
    invoke(PrimitiveOp::EShmShr, PrivMode::User, {id, receiver, PteRead},
           sender);
    PrimitiveResponse r =
        invoke(PrimitiveOp::EShmAt, PrivMode::User,
               {id, PteRead | PteWrite}, receiver);
    ASSERT_EQ(r.status, PrimStatus::Ok);
    WalkResult walk =
        rt->enclavePageTable(receiver)->walk(r.results.at(0));
    ASSERT_TRUE(walk.valid);
    EXPECT_TRUE(walk.perms & PteRead);
    EXPECT_FALSE(walk.perms & PteWrite);
}

TEST_F(ShmFixture, GrantCannotExceedMaxPerms)
{
    ShmId id = createShm(4, PteRead); // read-only region
    invoke(PrimitiveOp::EShmShr, PrivMode::User,
           {id, receiver, PteRead | PteWrite}, sender);
    PrimitiveResponse r = invoke(PrimitiveOp::EShmAt, PrivMode::User,
                                 {id, PteRead | PteWrite}, receiver);
    ASSERT_EQ(r.status, PrimStatus::Ok);
    WalkResult walk =
        rt->enclavePageTable(receiver)->walk(r.results.at(0));
    EXPECT_FALSE(walk.perms & PteWrite)
        << "maxPerms ceiling clamps even the creator's grants";
}

TEST_F(ShmFixture, MaliciousReleaseBlocked)
{
    // Section V-C: a receiver cannot release/reclaim the region.
    ShmId id = createShm();
    invoke(PrimitiveOp::EShmShr, PrivMode::User, {id, receiver, PteRead},
           sender);
    invoke(PrimitiveOp::EShmAt, PrivMode::User, {id, PteRead}, receiver);

    EXPECT_EQ(invoke(PrimitiveOp::EShmDes, PrivMode::User, {id},
                     receiver)
                  .status,
              PrimStatus::NotAuthorized);
    // Even the creator cannot destroy while connections are active.
    EXPECT_EQ(invoke(PrimitiveOp::EShmDes, PrivMode::User, {id}, sender)
                  .status,
              PrimStatus::Busy);
}

TEST_F(ShmFixture, DetachThenDestroySucceeds)
{
    ShmId id = createShm();
    invoke(PrimitiveOp::EShmShr, PrivMode::User, {id, receiver, PteRead},
           sender);
    PrimitiveResponse at =
        invoke(PrimitiveOp::EShmAt, PrivMode::User, {id, PteRead},
               receiver);
    std::vector<Addr> pages = rt->shm(id)->pages;
    KeyId key = rt->shm(id)->keyId;

    ASSERT_EQ(invoke(PrimitiveOp::EShmDt, PrivMode::User, {id},
                     receiver)
                  .status,
              PrimStatus::Ok);
    EXPECT_FALSE(
        rt->enclavePageTable(receiver)->walk(at.results.at(0)).valid);

    ASSERT_EQ(invoke(PrimitiveOp::EShmDes, PrivMode::User, {id}, sender)
                  .status,
              PrimStatus::Ok);
    EXPECT_EQ(rt->shm(id), nullptr);
    EXPECT_FALSE(enc.hasKey(key));
    for (Addr ppn : pages) {
        EXPECT_FALSE(bitmap.isEnclavePage(ppn));
        EXPECT_EQ(rt->ownership().lookup(ppn), nullptr);
    }
}

TEST_F(ShmFixture, SharedPagesNeverReissuedAsPrivate)
{
    ShmId id = createShm(8);
    std::set<Addr> shared(rt->shm(id)->pages.begin(),
                          rt->shm(id)->pages.end());
    // Exhaustively allocate private memory; no shared page may appear.
    for (int i = 0; i < 20; ++i) {
        PrimitiveResponse r =
            invoke(PrimitiveOp::EAlloc, PrivMode::User, {4}, attacker);
        ASSERT_EQ(r.status, PrimStatus::Ok);
        const EnclaveControl *ctl = rt->enclave(attacker);
        for (Addr ppn : ctl->pages)
            EXPECT_EQ(shared.count(ppn), 0u);
    }
}

TEST_F(ShmFixture, DoubleAttachRejected)
{
    ShmId id = createShm();
    invoke(PrimitiveOp::EShmAt, PrivMode::User, {id, PteRead}, sender);
    EXPECT_EQ(invoke(PrimitiveOp::EShmAt, PrivMode::User, {id, PteRead},
                     sender)
                  .status,
              PrimStatus::AlreadyExists);
}

} // namespace
} // namespace hypertee
