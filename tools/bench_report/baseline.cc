#include "tools/bench_report/baseline.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/json.hh"
#include "sim/stats_export.hh"

namespace hypertee::benchreport
{

namespace
{

BenchRecord
recordFromJson(const JsonValue &v)
{
    BenchRecord r;
    r.bench = v.stringAt("bench", "");
    r.mode = v.stringAt("mode", "full");
    r.jobs = static_cast<std::uint64_t>(v.numberAt("jobs", 1));
    r.eventsFired =
        static_cast<std::uint64_t>(v.numberAt("events_fired", 0));
    r.wallSeconds = v.numberAt("wall_seconds", 0);
    r.eventsPerSec = v.numberAt("events_per_sec", 0);
    r.instructions =
        static_cast<std::uint64_t>(v.numberAt("instructions", 0));
    r.instsPerSec = v.numberAt("insts_per_sec", 0);
    // Legacy baselines predate the explicit flag; derive it from the
    // same floors the writer uses so old and new files band alike.
    if (const JsonValue *g = v.find("gated"))
        r.gated = g->isBool() ? g->boolean() : true;
    else
        r.gated = gatedByFloors(r.eventsFired, r.instructions);
    r.peakRssKb =
        static_cast<std::uint64_t>(v.numberAt("peak_rss_kb", 0));
    if (const JsonValue *d = v.find("deterministic_events"))
        r.deterministicEvents = d->isBool() ? d->boolean() : true;
    r.exitCode = static_cast<int>(v.numberAt("exit_code", 0));
    r.harnessWallSeconds = v.numberAt("harness_wall_seconds", 0);
    return r;
}

void
writeRecord(JsonWriter &w, const BenchRecord &r)
{
    w.beginObject();
    w.member("bench", r.bench);
    w.member("mode", r.mode);
    w.member("jobs", r.jobs);
    w.member("events_fired", r.eventsFired);
    w.member("wall_seconds", r.wallSeconds);
    w.member("events_per_sec", r.eventsPerSec);
    w.member("instructions", r.instructions);
    w.member("insts_per_sec", r.instsPerSec);
    w.member("gated", r.gated);
    w.member("peak_rss_kb", r.peakRssKb);
    w.member("deterministic_events", r.deterministicEvents);
    w.member("exit_code", static_cast<double>(r.exitCode));
    w.member("harness_wall_seconds", r.harnessWallSeconds);
    w.endObject();
}

} // namespace

std::optional<Baseline>
Baseline::fromJsonText(const std::string &text)
{
    std::optional<JsonValue> root = JsonValue::parse(text);
    if (!root || !root->isObject())
        return std::nullopt;
    if (root->stringAt("schema", "") != baselineSchema)
        return std::nullopt;

    Baseline b;
    b.date = root->stringAt("date", "undated");
    b.mode = root->stringAt("mode", "full");
    const JsonValue *benches = root->find("benches");
    if (!benches || !benches->isArray())
        return std::nullopt;
    for (const JsonValue &entry : benches->array()) {
        if (!entry.isObject())
            return std::nullopt;
        BenchRecord r = recordFromJson(entry);
        if (r.bench.empty())
            return std::nullopt;
        b.benches.push_back(std::move(r));
    }
    return b;
}

std::optional<Baseline>
Baseline::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return fromJsonText(ss.str());
}

void
Baseline::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", baselineSchema);
    w.member("date", date);
    w.member("mode", mode);
    w.key("benches");
    w.beginArray();
    for (const BenchRecord &r : benches)
        writeRecord(w, r);
    w.endArray();
    w.key("totals");
    w.beginObject();
    w.member("events_fired", totalEventsFired());
    w.member("wall_seconds", totalWallSeconds());
    double wall = totalWallSeconds();
    w.member("events_per_sec",
             wall > 0 ? double(totalEventsFired()) / wall : 0.0);
    w.endObject();
    w.endObject();
    os << "\n";
}

const BenchRecord *
Baseline::find(const std::string &bench) const
{
    for (const BenchRecord &r : benches)
        if (r.bench == bench)
            return &r;
    return nullptr;
}

std::uint64_t
Baseline::totalEventsFired() const
{
    std::uint64_t total = 0;
    for (const BenchRecord &r : benches)
        total += r.eventsFired;
    return total;
}

double
Baseline::totalWallSeconds() const
{
    double total = 0;
    for (const BenchRecord &r : benches)
        total += r.wallSeconds;
    return total;
}

CompareResult
compareBaselines(const Baseline &before, const Baseline &after,
                 const CompareOptions &opts)
{
    CompareResult result;
    result.modeMismatch = before.mode != after.mode;

    // Union of bench names, old-file order first so reports stay
    // stable across runs.
    std::vector<std::string> names;
    for (const BenchRecord &r : before.benches)
        names.push_back(r.bench);
    for (const BenchRecord &r : after.benches)
        if (!before.find(r.bench))
            names.push_back(r.bench);

    std::vector<double> ratios;
    for (const std::string &name : names) {
        const BenchRecord *o = before.find(name);
        const BenchRecord *n = after.find(name);
        BenchComparison c;
        c.bench = name;
        c.inOld = o != nullptr;
        c.inNew = n != nullptr;
        if (o) {
            c.oldEvents = o->eventsFired;
            c.oldRate = o->eventsPerSec;
            c.oldInsts = o->instructions;
            c.oldInstRate = o->instsPerSec;
            c.notGated = !o->gated;
        }
        if (n) {
            c.newEvents = n->eventsFired;
            c.newRate = n->eventsPerSec;
            c.newInsts = n->instructions;
            c.newInstRate = n->instsPerSec;
        }
        // The two throughput metrics band independently; their
        // ratios pool into one median so normalization cancels the
        // same machine-speed factor for both.
        if (o && n && o->eventsPerSec > 0 && n->eventsPerSec > 0) {
            c.ratio = n->eventsPerSec / o->eventsPerSec;
            if (o->gated && o->eventsFired >= opts.minEvents)
                ratios.push_back(c.ratio);
        }
        if (o && n && o->instsPerSec > 0 && n->instsPerSec > 0) {
            c.instRatio = n->instsPerSec / o->instsPerSec;
            if (o->gated && o->instructions >= opts.minInstructions)
                ratios.push_back(c.instRatio);
        }
        if (o && n && o->deterministicEvents &&
            n->deterministicEvents &&
            o->eventsFired != n->eventsFired) {
            c.eventsMismatch = true;
        }
        // Instruction counts are equally deterministic, but only
        // files new enough to record them (nonzero) can be held to
        // the exact match.
        if (o && n && o->deterministicEvents &&
            n->deterministicEvents && o->instructions > 0 &&
            o->instructions != n->instructions) {
            c.instsMismatch = true;
        }
        result.benches.push_back(std::move(c));
    }

    if (opts.speedNormalize && !ratios.empty()) {
        std::sort(ratios.begin(), ratios.end());
        std::size_t mid = ratios.size() / 2;
        result.medianRatio =
            ratios.size() % 2 == 1
                ? ratios[mid]
                : 0.5 * (ratios[mid - 1] + ratios[mid]);
        if (result.medianRatio <= 0)
            result.medianRatio = 1.0;
    }

    for (BenchComparison &c : result.benches) {
        c.normalizedRatio =
            opts.speedNormalize && c.ratio > 0
                ? c.ratio / result.medianRatio
                : c.ratio;
        c.normalizedInstRatio =
            opts.speedNormalize && c.instRatio > 0
                ? c.instRatio / result.medianRatio
                : c.instRatio;
        if (c.inOld && c.inNew && !c.notGated) {
            if (c.ratio > 0 && c.oldEvents >= opts.minEvents &&
                c.normalizedRatio < 1.0 - opts.tolerance) {
                c.regressed = true;
            }
            if (c.instRatio > 0 &&
                c.oldInsts >= opts.minInstructions &&
                c.normalizedInstRatio < 1.0 - opts.tolerance) {
                c.regressed = true;
            }
        }
        if (c.eventsMismatch || c.instsMismatch || c.regressed)
            result.ok = false;
    }
    // A smoke run is not comparable to a full run: every per-bench
    // event count and rate differs by design.
    if (result.modeMismatch)
        result.ok = false;
    return result;
}

namespace
{

std::string
fmtRate(double rate)
{
    char buf[64];
    if (rate <= 0) {
        return "-";
    } else if (rate >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.2fM/s", rate / 1e6);
    } else if (rate >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.1fk/s", rate / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1f/s", rate);
    }
    return buf;
}

std::string
fmtRatio(double ratio)
{
    if (ratio <= 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
    return buf;
}

std::string
statusOf(const BenchComparison &c)
{
    if (!c.inOld)
        return "new";
    if (!c.inNew)
        return "removed";
    if (c.eventsMismatch)
        return "EVENTS-MISMATCH";
    if (c.instsMismatch)
        return "INSTS-MISMATCH";
    if (c.regressed)
        return "REGRESSED";
    if (c.notGated)
        return "not-gated";
    return "ok";
}

} // namespace

void
renderComparison(std::ostream &os, const CompareResult &result,
                 const CompareOptions &opts, bool markdown)
{
    const char *sep = markdown ? " | " : "  ";
    auto pad = [&](const std::string &s, std::size_t width) {
        std::string out = s;
        if (!markdown && out.size() < width)
            out.append(width - out.size(), ' ');
        return out;
    };

    if (markdown)
        os << "| ";
    os << pad("bench", 28) << sep << pad("old ev/s", 10) << sep
       << pad("new ev/s", 10) << sep << pad("ev ratio", 8) << sep
       << pad("old i/s", 10) << sep << pad("new i/s", 10) << sep
       << pad("i ratio", 8) << sep << pad("status", 9);
    if (markdown) {
        os << " |\n|---|---|---|---|---|---|---|---|";
    }
    os << "\n";

    for (const BenchComparison &c : result.benches) {
        if (markdown)
            os << "| ";
        os << pad(c.bench, 28) << sep << pad(fmtRate(c.oldRate), 10)
           << sep << pad(fmtRate(c.newRate), 10) << sep
           << pad(fmtRatio(opts.speedNormalize ? c.normalizedRatio
                                               : c.ratio),
                  8)
           << sep << pad(fmtRate(c.oldInstRate), 10) << sep
           << pad(fmtRate(c.newInstRate), 10) << sep
           << pad(fmtRatio(opts.speedNormalize
                               ? c.normalizedInstRatio
                               : c.instRatio),
                  8)
           << sep << pad(statusOf(c), 9);
        if (markdown)
            os << " |";
        os << "\n";
    }

    os << "\n";
    if (opts.speedNormalize) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", result.medianRatio);
        os << "median machine-speed ratio: " << buf
           << " (ratios above are normalized by it)\n";
    }
    if (result.modeMismatch)
        os << "warning: comparing baselines of different modes "
              "(smoke vs full)\n";
    os << "tolerance: " << int(opts.tolerance * 100 + 0.5)
       << "% throughput drop allowed (events/sec and insts/sec; "
          "not-gated benches are exempt)\n";
    os << "result: " << (result.ok ? "OK" : "REGRESSION") << "\n";
}

} // namespace hypertee::benchreport
