/**
 * @file
 * The committed perf-baseline format and its comparison logic.
 *
 * A baseline file (`BENCH_<date>.json` at the repo root) is one
 * measurement of the whole bench suite on one machine:
 *
 *   {
 *     "schema": "hypertee-bench-baseline-v1",
 *     "date": "2026-08-09",
 *     "mode": "smoke",
 *     "benches": [
 *       { "bench": "bench_fig6_slo", "mode": "smoke", "jobs": 1,
 *         "events_fired": 123, "wall_seconds": 1.5,
 *         "events_per_sec": 82.0, "instructions": 2000000,
 *         "insts_per_sec": 1333333.0, "gated": true,
 *         "peak_rss_kb": 40000,
 *         "deterministic_events": true, "exit_code": 0,
 *         "harness_wall_seconds": 1.6 },
 *       ...
 *     ],
 *     "totals": { "events_fired": ..., "wall_seconds": ...,
 *                 "events_per_sec": ... }
 *   }
 *
 * bench/perf_baseline produces these; tools/bench_report diffs two of
 * them. Comparison semantics:
 *
 *  - events_fired is a pure function of the simulated workload, so
 *    for benches with deterministic_events any difference is a
 *    *determinism regression* and always fails (bench_micro's
 *    google-benchmark iteration counts adapt to host speed, so it
 *    opts out).
 *  - instructions is likewise a pure function of the workload
 *    (perf::totalInstsRetired, the simulated-instruction count), so
 *    deterministic benches also exact-match it — but only when the
 *    old file recorded a nonzero count, so legacy baselines written
 *    before the field existed still compare cleanly.
 *  - events_per_sec and insts_per_sec are host-dependent. Each is a
 *    separately banded metric: a bench participates in a metric's
 *    band only when its old-side volume clears that metric's floor
 *    (minEvents / minInstructions). Comparing runs from different
 *    machines, pass speedNormalize: every per-bench new/old ratio is
 *    divided by the suite's median ratio — pooled across both
 *    metrics — cancelling overall machine speed and flagging only
 *    benches that regressed *relative to the rest of the suite*.
 *    Same-machine comparisons (the re-baseline workflow) can leave
 *    it off for absolute checking.
 *  - A bench regresses when a banded metric's (normalized) ratio
 *    drops below 1 - tolerance. New or removed benches are reported
 *    but do not fail the comparison.
 *  - Benches below *both* floors carry an explicit "gated": false in
 *    the file and are reported as not-gated: visible in the table,
 *    exempt from the band (sub-millisecond runs are timing noise).
 */

#ifndef HYPERTEE_TOOLS_BENCH_REPORT_BASELINE_HH
#define HYPERTEE_TOOLS_BENCH_REPORT_BASELINE_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace hypertee::benchreport
{

/** Schema identifier every baseline file must carry. */
inline constexpr const char *baselineSchema =
    "hypertee-bench-baseline-v1";

/**
 * Band floors shared by the baseline writer (which derives each
 * record's "gated" flag) and CompareOptions (whose defaults must
 * agree, or a file's explicit flag would contradict the band).
 */
inline constexpr std::uint64_t gateMinEvents = 10000;
inline constexpr std::uint64_t gateMinInstructions = 100000;

/** The explicit per-record band-eligibility flag (see gated). */
inline constexpr bool
gatedByFloors(std::uint64_t events_fired, std::uint64_t instructions)
{
    return events_fired >= gateMinEvents ||
           instructions >= gateMinInstructions;
}

/** One bench's measurement inside a baseline. */
struct BenchRecord
{
    std::string bench;
    std::string mode = "full";
    std::uint64_t jobs = 1;
    std::uint64_t eventsFired = 0;
    double wallSeconds = 0;
    double eventsPerSec = 0;
    /** Simulated instructions retired (0 in pre-field baselines). */
    std::uint64_t instructions = 0;
    double instsPerSec = 0;
    /**
     * Whether the bench clears at least one band floor (events or
     * instructions). Written explicitly so exemption from the perf
     * band is a reviewed fact in the committed file, not an implicit
     * threshold effect; derived from the floors when a legacy file
     * lacks the field.
     */
    bool gated = true;
    std::uint64_t peakRssKb = 0;
    /** False for adaptive-iteration benches (bench_micro). */
    bool deterministicEvents = true;
    int exitCode = 0;
    /** Wall time seen by the harness, including process startup. */
    double harnessWallSeconds = 0;
};

/** A parsed BENCH_<date>.json. */
struct Baseline
{
    std::string date = "undated";
    std::string mode = "full";
    std::vector<BenchRecord> benches;

    /** Parse; nullopt on malformed JSON or wrong schema. */
    static std::optional<Baseline> fromJsonText(
        const std::string &text);

    /** Read and parse @p path; nullopt on I/O or parse failure. */
    static std::optional<Baseline> load(const std::string &path);

    /** Serialize in the committed format (sorted as given). */
    void writeJson(std::ostream &os) const;

    const BenchRecord *find(const std::string &bench) const;

    std::uint64_t totalEventsFired() const;
    double totalWallSeconds() const;
};

/** Knobs for compareBaselines. */
struct CompareOptions
{
    /** Allowed fractional events/sec drop before failing. */
    double tolerance = 0.10;
    /**
     * Divide each ratio by the suite median before applying the
     * tolerance (cross-machine comparisons).
     */
    bool speedNormalize = false;
    /**
     * Benches whose old run fired fewer events than this are
     * exempt from the events/sec band (and its median): sub-
     * millisecond runs are pure timing noise.
     */
    std::uint64_t minEvents = gateMinEvents;
    /**
     * Floor for the insts/sec band, mirroring minEvents: benches
     * that simulated fewer instructions than this on the old side
     * are exempt from the instruction-throughput band.
     */
    std::uint64_t minInstructions = gateMinInstructions;
};

/** One bench's comparison outcome. */
struct BenchComparison
{
    std::string bench;
    bool inOld = false;
    bool inNew = false;
    std::uint64_t oldEvents = 0;
    std::uint64_t newEvents = 0;
    double oldRate = 0;
    double newRate = 0;
    std::uint64_t oldInsts = 0;
    std::uint64_t newInsts = 0;
    double oldInstRate = 0;
    double newInstRate = 0;
    /** newRate / oldRate; 0 when either side is missing or zero. */
    double ratio = 0;
    /** ratio / medianRatio when normalizing, else ratio. */
    double normalizedRatio = 0;
    /** Same pair for the insts/sec metric. */
    double instRatio = 0;
    double normalizedInstRatio = 0;
    /** Neither metric clears its floor: reported, never banded. */
    bool notGated = false;
    bool eventsMismatch = false; ///< deterministic counts differ
    bool instsMismatch = false;  ///< deterministic inst counts differ
    bool regressed = false;      ///< a banded metric below the band
};

/** Whole-suite comparison outcome. */
struct CompareResult
{
    std::vector<BenchComparison> benches;
    double medianRatio = 1.0;
    bool modeMismatch = false;
    /** True when nothing mismatched and nothing regressed. */
    bool ok = true;
};

CompareResult compareBaselines(const Baseline &before,
                               const Baseline &after,
                               const CompareOptions &opts);

/**
 * Render @p result as a fixed-width table (or a markdown one for the
 * EXPERIMENTS.md before/after section).
 */
void renderComparison(std::ostream &os, const CompareResult &result,
                      const CompareOptions &opts, bool markdown);

} // namespace hypertee::benchreport

#endif // HYPERTEE_TOOLS_BENCH_REPORT_BASELINE_HH
