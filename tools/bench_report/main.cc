/**
 * @file
 * bench_report: diff two committed perf baselines.
 *
 *   bench_report <old BENCH_*.json> <new BENCH_*.json>
 *                [--tolerance=0.10] [--speed-normalize] [--markdown]
 *
 * Exit codes: 0 comparison passed, 1 regression or determinism
 * mismatch, 2 usage / I/O / parse error. CI runs this with
 * --speed-normalize so runners of different speeds only fail benches
 * that slowed down relative to the rest of the suite.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "tools/bench_report/baseline.hh"

using namespace hypertee::benchreport;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <old.json> <new.json> "
                 "[--tolerance=FRAC] [--min-events=N] [--min-insts=N] "
                 "[--speed-normalize] [--markdown]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string old_path, new_path;
    CompareOptions opts;
    bool markdown = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--speed-normalize") {
            opts.speedNormalize = true;
        } else if (arg == "--markdown") {
            markdown = true;
        } else if (arg.rfind("--min-events=", 0) == 0) {
            char *end = nullptr;
            opts.minEvents = std::strtoull(
                arg.c_str() + std::strlen("--min-events="), &end, 10);
            if (!end || *end != '\0') {
                std::fprintf(stderr, "bad --min-events value: %s\n",
                             arg.c_str());
                return 2;
            }
        } else if (arg.rfind("--min-insts=", 0) == 0) {
            char *end = nullptr;
            opts.minInstructions = std::strtoull(
                arg.c_str() + std::strlen("--min-insts="), &end, 10);
            if (!end || *end != '\0') {
                std::fprintf(stderr, "bad --min-insts value: %s\n",
                             arg.c_str());
                return 2;
            }
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            char *end = nullptr;
            double tol =
                std::strtod(arg.c_str() + std::strlen("--tolerance="),
                            &end);
            if (!end || *end != '\0' || tol < 0 || tol >= 1) {
                std::fprintf(stderr, "bad --tolerance value: %s\n",
                             arg.c_str());
                return 2;
            }
            opts.tolerance = tol;
        } else if (arg.rfind("--", 0) == 0) {
            usage(argv[0]);
            return 2;
        } else if (old_path.empty()) {
            old_path = arg;
        } else if (new_path.empty()) {
            new_path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (old_path.empty() || new_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::optional<Baseline> before = Baseline::load(old_path);
    if (!before) {
        std::fprintf(stderr, "cannot load baseline: %s\n",
                     old_path.c_str());
        return 2;
    }
    std::optional<Baseline> after = Baseline::load(new_path);
    if (!after) {
        std::fprintf(stderr, "cannot load baseline: %s\n",
                     new_path.c_str());
        return 2;
    }

    std::printf("comparing %s (%s) -> %s (%s)\n\n",
                old_path.c_str(), before->date.c_str(),
                new_path.c_str(), after->date.c_str());

    CompareResult result = compareBaselines(*before, *after, opts);
    renderComparison(std::cout, result, opts, markdown);
    return result.ok ? 0 : 1;
}
