#include "tools/htlint/source_file.hh"

#include <fstream>
#include <sstream>

namespace hypertee::htlint
{

namespace
{

bool
isClassKeyword(const std::string &s)
{
    return s == "class" || s == "struct" || s == "union" ||
           s == "enum";
}

bool
isAccessKeyword(const std::string &s)
{
    return s == "public" || s == "protected" || s == "private" ||
           s == "virtual" || s == "final";
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

} // namespace

bool
SourceFile::load(const std::string &path, const std::string &rel_path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    loadText(ss.str(), rel_path);
    return true;
}

void
SourceFile::loadText(std::string text, const std::string &rel_path)
{
    _relPath = rel_path;
    _lexed = lex(text);
    analyze();
}

bool
SourceFile::isHeader() const
{
    auto ends_with = [&](const char *suf) {
        std::string s(suf);
        return _relPath.size() >= s.size() &&
               _relPath.compare(_relPath.size() - s.size(), s.size(),
                                s) == 0;
    };
    return ends_with(".hh") || ends_with(".hpp") || ends_with(".h");
}

void
SourceFile::analyze()
{
    buildBlocks();
    buildSuppressions();
}

void
SourceFile::classify(Block &b, std::size_t stmt_start,
                     std::size_t open_idx, int parent)
{
    const auto &toks = _lexed.tokens;

    // Gather the code tokens of the introducing statement.
    std::vector<std::size_t> stmt;
    for (std::size_t i = stmt_start; i < open_idx; ++i)
        if (!toks[i].inDirective)
            stmt.push_back(i);

    if (stmt.empty()) {
        // '{' directly after ';' '{' '}' or at file start: a nested
        // braced list inside an initializer, otherwise a bare block.
        b.kind = (parent >= 0 &&
                  (_blocks[static_cast<std::size_t>(parent)].kind ==
                       Block::Kind::Initializer ||
                   _blocks[static_cast<std::size_t>(parent)].kind ==
                       Block::Kind::Other))
                     ? Block::Kind::Initializer
                     : Block::Kind::Statement;
        return;
    }

    const Token &first = toks[stmt[0]];
    if (first.kind == TokKind::Identifier) {
        if (first.text == "namespace") {
            b.kind = Block::Kind::Namespace;
            if (stmt.size() > 1 &&
                toks[stmt[1]].kind == TokKind::Identifier)
                b.name = toks[stmt[1]].text;
            return;
        }
        if (first.text == "do" || first.text == "else" ||
            first.text == "try") {
            b.kind = Block::Kind::Statement;
            return;
        }
        if (first.text == "extern") {
            b.kind = Block::Kind::Other;
            return;
        }
    }

    // Locate the first statement-level '(' and '=' and any class-key.
    std::size_t first_paren = stmt.size();
    std::size_t first_eq = stmt.size();
    std::size_t class_kw = stmt.size();
    for (std::size_t s = 0; s < stmt.size(); ++s) {
        const Token &t = toks[stmt[s]];
        if (t.kind == TokKind::Punct && t.text == "(" &&
            t.parenDepth == 1 && first_paren == stmt.size())
            first_paren = s;
        if (t.kind == TokKind::Punct && t.text == "=" &&
            t.parenDepth == 0 && first_eq == stmt.size())
            first_eq = s;
        if (t.kind == TokKind::Identifier && t.parenDepth == 0 &&
            isClassKeyword(t.text) && class_kw == stmt.size() &&
            first_paren == stmt.size())
            class_kw = s;
    }

    // `Foo x = { ... }` / `auto f = [..](..) { ... }`: not a scope the
    // rules care about, but functions may live deeper inside.
    if (first_eq < stmt.size() && first_eq < first_paren &&
        first_eq < class_kw) {
        b.kind = Block::Kind::Other;
        return;
    }

    if (class_kw < stmt.size()) {
        b.kind = Block::Kind::Type;
        // `enum class Name` puts the class-key closest to the name.
        std::size_t kw = class_kw;
        for (std::size_t s = kw + 1; s < stmt.size(); ++s)
            if (isClassKeyword(toks[stmt[s]].text))
                kw = s;
        std::size_t colon = stmt.size();
        for (std::size_t s = kw + 1; s < stmt.size(); ++s) {
            const Token &t = toks[stmt[s]];
            if (t.kind == TokKind::Identifier && b.name.empty())
                b.name = t.text;
            if (t.kind == TokKind::Punct && t.text == ":" &&
                t.parenDepth == 0) {
                colon = s;
                break;
            }
        }
        for (std::size_t s = colon + 1; s + 1 <= stmt.size() &&
                                        s < stmt.size();
             ++s) {
            const Token &t = toks[stmt[s]];
            if (t.kind != TokKind::Identifier ||
                isAccessKeyword(t.text))
                continue;
            // For qualified bases keep only the last component.
            if (s + 1 < stmt.size() &&
                toks[stmt[s + 1]].text == "::")
                continue;
            b.bases.push_back(t.text);
        }
        return;
    }

    if (first_paren < stmt.size() && first_paren > 0) {
        const Token &prev = toks[stmt[first_paren - 1]];
        if (prev.kind == TokKind::Identifier) {
            if (prev.text == "if" || prev.text == "for" ||
                prev.text == "while" || prev.text == "switch" ||
                prev.text == "catch") {
                b.kind = Block::Kind::Statement;
                return;
            }
            b.kind = Block::Kind::Function;
            b.name = prev.text;
            if (first_paren >= 3 &&
                toks[stmt[first_paren - 2]].text == "::" &&
                toks[stmt[first_paren - 3]].kind ==
                    TokKind::Identifier)
                b.className = toks[stmt[first_paren - 3]].text;
            return;
        }
        if (prev.kind == TokKind::Punct && prev.text == "]") {
            b.kind = Block::Kind::Other; // lambda
            return;
        }
        // `operator==(...)` and friends: the token(s) before '(' are
        // punctuation; look a few tokens back for `operator`.
        for (std::size_t back = 2; back <= 4 && back <= first_paren;
             ++back) {
            const Token &t = toks[stmt[first_paren - back]];
            if (t.kind == TokKind::Identifier &&
                t.text == "operator") {
                b.kind = Block::Kind::Function;
                b.name = "operator";
                return;
            }
        }
    }

    b.kind = Block::Kind::Other;
}

void
SourceFile::buildBlocks()
{
    const auto &toks = _lexed.tokens;
    std::vector<int> stack;
    std::size_t stmt_start = 0;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective)
            continue;
        if (t.kind != TokKind::Punct) {
            continue;
        }
        if (t.text == ";" && t.parenDepth == 0) {
            stmt_start = i + 1;
            continue;
        }
        if (t.text == "{") {
            Block b;
            b.stmtStart = stmt_start;
            b.open = i;
            b.close = toks.size() ? toks.size() - 1 : 0;
            b.parent = stack.empty() ? -1 : stack.back();
            classify(b, stmt_start, i, b.parent);
            if (b.kind == Block::Kind::Function &&
                b.className.empty() && b.parent >= 0) {
                const Block &p =
                    _blocks[static_cast<std::size_t>(b.parent)];
                if (p.kind == Block::Kind::Type)
                    b.className = p.name;
            }
            _blocks.push_back(std::move(b));
            stack.push_back(static_cast<int>(_blocks.size()) - 1);
            stmt_start = i + 1;
            continue;
        }
        if (t.text == "}") {
            if (!stack.empty()) {
                _blocks[static_cast<std::size_t>(stack.back())]
                    .close = i;
                stack.pop_back();
            }
            stmt_start = i + 1;
            continue;
        }
    }
}

void
SourceFile::buildSuppressions()
{
    for (const Comment &cm : _lexed.comments) {
        std::size_t at = cm.text.find("htlint:");
        if (at == std::string::npos)
            continue;
        std::size_t p = at + 7;
        while (p < cm.text.size() && cm.text[p] == ' ')
            ++p;
        bool file_wide = false;
        if (cm.text.compare(p, 10, "allow-file") == 0) {
            file_wide = true;
            p += 10;
        } else if (cm.text.compare(p, 5, "allow") == 0) {
            p += 5;
        } else {
            continue;
        }
        std::size_t lp = cm.text.find('(', p);
        std::size_t rp = cm.text.find(')', lp == std::string::npos
                                               ? p
                                               : lp);
        if (lp == std::string::npos || rp == std::string::npos)
            continue;
        std::string names = cm.text.substr(lp + 1, rp - lp - 1);
        std::size_t start = 0;
        while (start <= names.size()) {
            std::size_t comma = names.find(',', start);
            std::string name = trim(
                comma == std::string::npos
                    ? names.substr(start)
                    : names.substr(start, comma - start));
            if (!name.empty()) {
                _allowSites.push_back({cm.line, name, file_wide});
                if (file_wide) {
                    _allowFile.insert(name);
                } else {
                    _allow[cm.line].insert(name);
                    if (cm.ownLine)
                        _allow[cm.endLine + 1].insert(name);
                }
            }
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
}

int
SourceFile::enclosingBlock(std::size_t tok_idx) const
{
    int best = -1;
    for (std::size_t b = 0; b < _blocks.size(); ++b) {
        if (_blocks[b].open < tok_idx && tok_idx < _blocks[b].close) {
            if (best < 0 ||
                _blocks[b].open >
                    _blocks[static_cast<std::size_t>(best)].open)
                best = static_cast<int>(b);
        }
    }
    return best;
}

int
SourceFile::enclosingFunction(std::size_t tok_idx) const
{
    int b = enclosingBlock(tok_idx);
    while (b >= 0) {
        const Block &blk = _blocks[static_cast<std::size_t>(b)];
        if (blk.kind == Block::Kind::Function)
            return b;
        if (blk.kind == Block::Kind::Type ||
            blk.kind == Block::Kind::Namespace)
            return -1;
        b = blk.parent;
    }
    return -1;
}

bool
SourceFile::suppressed(const std::string &rule, int line) const
{
    if (_allowFile.count(rule))
        return true;
    auto it = _allow.find(line);
    return it != _allow.end() && it->second.count(rule) > 0;
}

} // namespace hypertee::htlint
