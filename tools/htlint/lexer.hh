/**
 * @file
 * Minimal C++ tokenizer for htlint.
 *
 * Produces identifier / number / string / char / punctuation tokens
 * with line numbers and paren/brace nesting depths, plus the comment
 * stream (needed for the `htlint:` suppression comments).
 * Preprocessor directives are tokenized but flagged, so macro bodies
 * (which legally contain unbalanced-looking braces) never disturb the
 * scope analysis built on top of this.
 */

#ifndef HYPERTEE_TOOLS_HTLINT_LEXER_HH
#define HYPERTEE_TOOLS_HTLINT_LEXER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hypertee::htlint
{

enum class TokKind
{
    Identifier,
    Number,
    String,
    CharLit,
    Punct,
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;          ///< 1-based source line
    bool inDirective = false; ///< inside a preprocessor directive
    /** () nesting depth at this token, directives excluded. */
    int parenDepth = 0;
    /** {} nesting depth at this token, directives excluded. */
    int braceDepth = 0;
};

struct Comment
{
    int line = 0;    ///< line the comment starts on
    int endLine = 0; ///< line the comment ends on (block comments)
    std::string text;
    /** True when only whitespace precedes the comment on its line. */
    bool ownLine = false;
};

struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/** Tokenize @p text; never fails (unknown bytes become punctuation). */
LexedFile lex(const std::string &text);

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_LEXER_HH
