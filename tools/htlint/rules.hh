/**
 * @file
 * Rule framework: a diagnostic, the rule registry, and the Project
 * (the full set of files under analysis, so cross-file rules can pair
 * a header with its implementation and look up class hierarchies).
 */

#ifndef HYPERTEE_TOOLS_HTLINT_RULES_HH
#define HYPERTEE_TOOLS_HTLINT_RULES_HH

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "tools/htlint/source_file.hh"

namespace hypertee::htlint
{
class ProjectIndex;
class CallGraph;
} // namespace hypertee::htlint

namespace hypertee::htlint
{

/** One hop of an interprocedural dataflow path (SARIF codeFlows). */
struct FlowStep
{
    std::string file; ///< project-relative path
    int line = 0;
    std::string note; ///< short label ("secret source ...", "sink ...")
};

struct Diagnostic
{
    std::string file; ///< project-relative path
    int line = 0;
    std::string rule;
    std::string message;
    /** Source-to-sink path for dataflow rules (empty otherwise). */
    std::vector<FlowStep> flow;
};

class Project
{
  public:
    // Out of line: members hold unique_ptrs to incomplete types.
    Project();
    ~Project();

    /** Load @p path, reporting it as @p rel_path; false on I/O error. */
    bool addFile(const std::string &path, const std::string &rel_path);

    /** Add a pre-analyzed file (parallel loader). */
    void addParsed(std::unique_ptr<SourceFile> file);

    /** Add analysis of in-memory text (fixture tests). */
    void addText(std::string text, const std::string &rel_path);

    const std::vector<std::unique_ptr<SourceFile>> &files() const
    {
        return _files;
    }

    /**
     * The sibling of @p file across the header/implementation split
     * (foo.cc <-> foo.hh, foo.cpp <-> foo.hpp); nullptr when the
     * project does not contain it.
     */
    const SourceFile *pairOf(const SourceFile &file) const;

    /** Direct base-class names of @p class_name, project-wide. */
    const std::vector<std::string> &
    basesOf(const std::string &class_name) const;

    /** Does @p class_name derive (transitively) from @p base? */
    bool derivesFrom(const std::string &class_name,
                     const std::string &base) const;

    /**
     * Names of functions declared to return `PhysicalMemory &` or
     * `PhysicalMemory *` anywhere in the project (e.g. csMem), so the
     * mediation rule can see through accessor calls.
     */
    const std::set<std::string> &physMemAccessors() const
    {
        return _physMemAccessors;
    }

    /**
     * Phase-1 whole-program index (functions, calls, guarded-by
     * annotations), built lazily on first use and invalidated when a
     * file is added.
     */
    const ProjectIndex &index() const;

    /** Phase-2 call graph over index(), built lazily. */
    const CallGraph &callGraph() const;

    /** Run every rule in @p rules (all when empty); suppressions and
     *  ordering applied. */
    std::vector<Diagnostic>
    run(const std::set<std::string> &rules = {}) const;

  private:
    void indexFile(const SourceFile &f);

    std::vector<std::unique_ptr<SourceFile>> _files;
    std::map<std::string, std::size_t> _byRelPath;
    std::map<std::string, std::vector<std::string>> _classBases;
    std::set<std::string> _physMemAccessors;
    mutable std::unique_ptr<ProjectIndex> _index;
    mutable std::unique_ptr<CallGraph> _callGraph;
};

using RuleFn = void (*)(const SourceFile &, const Project &,
                        std::vector<Diagnostic> &);

/** A whole-program rule: runs once over the project, not per file. */
using ProjectRuleFn = void (*)(const Project &,
                               std::vector<Diagnostic> &);

struct RuleInfo
{
    const char *name;
    const char *description;
    /** Per-file check (nullptr for whole-program rules). */
    RuleFn check = nullptr;
    /** Whole-program check (nullptr for per-file rules). */
    ProjectRuleFn checkProject = nullptr;
};

/** All built-in rules, in reporting order. */
const std::vector<RuleInfo> &allRules();

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_RULES_HH
