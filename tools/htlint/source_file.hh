/**
 * @file
 * A lexed source file plus the lightweight structure htlint rules
 * need: a block (scope) tree classifying every brace pair as a
 * namespace / type / function / statement / initializer, and the
 * suppression map parsed from the `htlint:` allow-comments
 * (`allow(rule)` trailing a line or on the line above it).
 */

#ifndef HYPERTEE_TOOLS_HTLINT_SOURCE_FILE_HH
#define HYPERTEE_TOOLS_HTLINT_SOURCE_FILE_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/htlint/lexer.hh"

namespace hypertee::htlint
{

/** One classified brace scope. */
struct Block
{
    enum class Kind
    {
        Namespace,
        Type,        ///< class/struct/union/enum body
        Function,    ///< function (or method/constructor) body
        Statement,   ///< if/for/while/switch/do/else/try/bare block
        Initializer, ///< braced init list
        Other,       ///< lambdas, extern "C", anything unrecognized
    };

    Kind kind = Kind::Other;
    std::string name;      ///< function/type/namespace name ("" if none)
    std::string className; ///< for functions: qualifying or enclosing type
    std::vector<std::string> bases; ///< for types: base class names
    std::size_t stmtStart = 0; ///< first token of the introducing stmt
    std::size_t open = 0;  ///< token index of '{'
    std::size_t close = 0; ///< token index of matching '}'
    int parent = -1;       ///< index into blocks(), -1 at file scope
};

class SourceFile
{
  public:
    /**
     * Load and analyze @p path. @p rel_path is the project-relative
     * path rules scope on (e.g. "src/mem/tlb.cc"); diagnostics are
     * reported against it. Returns false when the file is unreadable.
     */
    bool load(const std::string &path, const std::string &rel_path);

    /** Analyze in-memory text (fixture tests). */
    void loadText(std::string text, const std::string &rel_path);

    const std::string &relPath() const { return _relPath; }
    bool isHeader() const;

    const std::vector<Token> &tokens() const { return _lexed.tokens; }
    const std::vector<Comment> &comments() const
    {
        return _lexed.comments;
    }
    const std::vector<Block> &blocks() const { return _blocks; }

    /** Innermost block containing token @p tok_idx; -1 = file scope. */
    int enclosingBlock(std::size_t tok_idx) const;

    /**
     * Innermost Function block containing @p tok_idx, walking up
     * through statement/lambda blocks; -1 when not inside one.
     */
    int enclosingFunction(std::size_t tok_idx) const;

    /** Is @p rule suppressed at @p line by an allow comment? */
    bool suppressed(const std::string &rule, int line) const;

    /**
     * One rule name inside an `allow(...)`/`allow-file(...)` comment,
     * kept for auditing (`--list-suppressions`) and for rejecting
     * stale suppressions that name unknown rules.
     */
    struct AllowSite
    {
        int line = 0; ///< line of the comment itself
        std::string rule;
        bool fileWide = false;
    };
    const std::vector<AllowSite> &allowSites() const
    {
        return _allowSites;
    }

  private:
    void analyze();
    void buildBlocks();
    void buildSuppressions();
    void classify(Block &b, std::size_t stmt_start,
                  std::size_t open_idx, int parent);

    std::string _relPath;
    LexedFile _lexed;
    std::vector<Block> _blocks;
    /** line -> rules allowed on that line. */
    std::map<int, std::set<std::string>> _allow;
    /** rules allowed for the whole file. */
    std::set<std::string> _allowFile;
    /** every allow/allow-file mention, in source order. */
    std::vector<AllowSite> _allowSites;
};

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_SOURCE_FILE_HH
