/**
 * @file
 * htlint entry point. See tools/htlint/README.md for the rule list
 * and suppression syntax. Exit codes: 0 clean, 1 violations found,
 * 2 usage or I/O error.
 */

#include <iostream>

#include "tools/htlint/driver.hh"

int
main(int argc, char **argv)
{
    using namespace hypertee::htlint;
    Options opts;
    if (!parseArgs(argc, argv, opts, std::cerr))
        return 2;
    return runHtlint(opts, std::cout, std::cerr);
}
