#include "tools/htlint/sarif.hh"

#include <cstdio>
#include <map>

namespace hypertee::htlint
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeSarif(const std::vector<Diagnostic> &diags, std::ostream &out)
{
    const auto &rules = allRules();
    std::map<std::string, std::size_t> rule_index;
    for (std::size_t i = 0; i < rules.size(); ++i)
        rule_index[rules[i].name] = i;

    out << "{\n"
        << "  \"$schema\": \"https://raw.githubusercontent.com/"
           "oasis-tcs/sarif-spec/master/Schemata/"
           "sarif-schema-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"htlint\",\n"
        << "          \"informationUri\": "
           "\"tools/htlint/README.md\",\n"
        << "          \"rules\": [\n";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\n"
            << "              \"id\": \"" << jsonEscape(rules[i].name)
            << "\",\n"
            << "              \"shortDescription\": { \"text\": \""
            << jsonEscape(rules[i].description) << "\" }\n"
            << "            }" << (i + 1 < rules.size() ? "," : "")
            << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        auto it = rule_index.find(d.rule);
        out << "        {\n"
            << "          \"ruleId\": \"" << jsonEscape(d.rule)
            << "\",\n";
        if (it != rule_index.end())
            out << "          \"ruleIndex\": " << it->second << ",\n";
        out << "          \"level\": \"error\",\n"
            << "          \"message\": { \"text\": \""
            << jsonEscape(d.message) << "\" },\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": {\n"
            << "                  \"uri\": \"" << jsonEscape(d.file)
            << "\",\n"
            << "                  \"uriBaseId\": \"SRCROOT\"\n"
            << "                },\n"
            << "                \"region\": { \"startLine\": "
            << (d.line > 0 ? d.line : 1) << " }\n"
            << "              }\n"
            << "            }\n"
            << "          ]";
        if (!d.flow.empty()) {
            // Dataflow rules: render the source-to-sink chain so
            // code scanning shows the path, plus relatedLocations
            // for viewers that don't understand codeFlows.
            auto location = [&](const FlowStep &s,
                                const char *indent) {
                out << indent << "\"physicalLocation\": {\n"
                    << indent << "  \"artifactLocation\": {\n"
                    << indent << "    \"uri\": \""
                    << jsonEscape(s.file) << "\",\n"
                    << indent << "    \"uriBaseId\": \"SRCROOT\"\n"
                    << indent << "  },\n"
                    << indent << "  \"region\": { \"startLine\": "
                    << (s.line > 0 ? s.line : 1) << " }\n"
                    << indent << "},\n"
                    << indent << "\"message\": { \"text\": \""
                    << jsonEscape(s.note) << "\" }\n";
            };
            out << ",\n"
                << "          \"codeFlows\": [\n"
                << "            { \"threadFlows\": [ { "
                   "\"locations\": [\n";
            for (std::size_t s = 0; s < d.flow.size(); ++s) {
                out << "              { \"location\": {\n";
                location(d.flow[s], "                ");
                out << "              } }"
                    << (s + 1 < d.flow.size() ? "," : "") << "\n";
            }
            out << "            ] } ] }\n"
                << "          ],\n"
                << "          \"relatedLocations\": [\n";
            for (std::size_t s = 0; s < d.flow.size(); ++s) {
                out << "            {\n";
                location(d.flow[s], "              ");
                out << "            }"
                    << (s + 1 < d.flow.size() ? "," : "") << "\n";
            }
            out << "          ]";
        }
        out << "\n"
            << "        }" << (i + 1 < diags.size() ? "," : "")
            << "\n";
    }
    out << "      ],\n"
        << "      \"originalUriBaseIds\": {\n"
        << "        \"SRCROOT\": { \"uri\": \"file:///\" }\n"
        << "      },\n"
        << "      \"columnKind\": \"utf16CodeUnits\"\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
}

} // namespace hypertee::htlint
