/**
 * @file
 * secret-flow: forward, argument- and field-sensitive taint analysis
 * over the whole-program index.
 *
 * Proves that no enclave secret (device SK / EK seed, KDF-derived
 * memory/sealing/report/attestation/shared-memory keys, and
 * enclave-private page contents read through the mediated EMS port)
 * reaches an untrusted sink: TraceSink / HT_TRACE arguments, the
 * stats export, src/sim/logging, stdout/stderr, CS-visible physical
 * memory, or mailbox/EmCall payload buffers.
 *
 * A value stops being secret when it passes through a cryptographic
 * sanitizer (encrypt, MAC, sign, hash, public-key derivation) or when
 * a line is annotated `// htlint: declassify(<reason>)` with a
 * non-empty reason. Taint propagates across TU boundaries through
 * call-site arguments and return-value summaries; diagnostics carry
 * the full source-to-sink chain (rendered as SARIF codeFlows).
 */

#ifndef HYPERTEE_TOOLS_HTLINT_TAINT_HH
#define HYPERTEE_TOOLS_HTLINT_TAINT_HH

#include <vector>

#include "tools/htlint/rules.hh"

namespace hypertee::htlint
{

/** Whole-program entry point for the `secret-flow` rule. */
void checkSecretFlow(const Project &proj, std::vector<Diagnostic> &out);

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_TAINT_HH
