/**
 * @file
 * The built-in htlint rules. Each encodes one HyperTEE invariant;
 * tools/htlint/README.md documents the invariant each protects and
 * how to suppress a finding.
 */

#include "tools/htlint/rules.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <deque>

#include "tools/htlint/callgraph.hh"
#include "tools/htlint/index.hh"
#include "tools/htlint/locks.hh"
#include "tools/htlint/taint.hh"

namespace hypertee::htlint
{

namespace
{

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inSrcOrBench(const SourceFile &f)
{
    return startsWith(f.relPath(), "src/") ||
           startsWith(f.relPath(), "bench/");
}

void
report(std::vector<Diagnostic> &out, const SourceFile &f, int line,
       const char *rule, std::string message)
{
    out.push_back({f.relPath(), line, rule, std::move(message), {}});
}

bool
isAccessMethod(const std::string &s)
{
    static const std::array<const char *, 7> names = {
        "read",      "write",      "zero",   "read64",
        "write64",   "readBytes",  "writeBytes"};
    return std::find_if(names.begin(), names.end(), [&](const char *n) {
               return s == n;
           }) != names.end();
}

bool
isMediationGuard(const std::string &s)
{
    return s == "overlapsRange" || s == "containsRange" ||
           s == "isEnclavePage" || s == "isEnclaveAddr" ||
           s == "csAccessAllowed" || s == "setEnclavePage" ||
           s == "setBitmapBit" || s == "EnclaveBitmap";
}

bool
containsNoCase(const std::string &s, const std::string &needle)
{
    std::string lower;
    lower.reserve(s.size());
    for (char c : s)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return lower.find(needle) != std::string::npos;
}

/**
 * Names of variables/members of type PhysicalMemory declared in
 * @p f (plain, pointer, reference, or unique_ptr/shared_ptr).
 */
std::set<std::string>
physMemVars(const SourceFile &f)
{
    std::set<std::string> vars;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            t.text != "PhysicalMemory")
            continue;
        if (i > 0 && (toks[i - 1].text == "class" ||
                      toks[i - 1].text == "struct"))
            continue; // forward declaration
        if (i + 1 < toks.size() && toks[i + 1].text == "::")
            continue; // qualified use, not a declaration
        std::size_t j = i + 1;
        // unique_ptr<PhysicalMemory> name
        if (i > 0 && toks[i - 1].text == "<" && j < toks.size() &&
            toks[j].text == ">")
            ++j;
        while (j < toks.size() && (toks[j].text == "*" ||
                                   toks[j].text == "&" ||
                                   toks[j].text == "const"))
            ++j;
        if (j >= toks.size() ||
            toks[j].kind != TokKind::Identifier)
            continue;
        // `PhysicalMemory name(...)` at class/namespace scope is a
        // function declaration, inside a function it is a variable
        // with constructor arguments.
        if (j + 1 < toks.size() && toks[j + 1].text == "(" &&
            f.enclosingFunction(i) < 0)
            continue;
        vars.insert(toks[j].text);
    }
    return vars;
}

// -------------------------------------------------------- mediation-path

/**
 * Does the token range (open, close) of @p f contain an
 * ownership-bitmap / range-check guard? Beyond the named guard
 * functions, a claim/release/ownedBy call whose receiver mentions
 * "owner" counts (the EMS zero-then-claim idiom).
 */
bool
rangeHasGuard(const SourceFile &f, std::size_t open, std::size_t close)
{
    const auto &toks = f.tokens();
    for (std::size_t k = open + 1; k < close && k < toks.size(); ++k) {
        const Token &g = toks[k];
        if (g.inDirective || g.kind != TokKind::Identifier)
            continue;
        if (isMediationGuard(g.text))
            return true;
        if ((g.text == "claim" || g.text == "release" ||
             g.text == "ownedBy") &&
            k >= 2 &&
            (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
            toks[k - 2].kind == TokKind::Identifier &&
            containsNoCase(toks[k - 2].text, "owner"))
            return true;
    }
    return false;
}

bool
inSrcOrBenchPath(const std::string &rel)
{
    return startsWith(rel, "src/") || startsWith(rel, "bench/");
}

/** CS-side dirs whose unguarded roots are mediation violations. */
bool
isMediationOrigin(const std::string &rel)
{
    return startsWith(rel, "src/emcall/") ||
           startsWith(rel, "src/fabric/") ||
           startsWith(rel, "src/cpu/") || startsWith(rel, "bench/");
}

void
checkMediationPath(const Project &proj, std::vector<Diagnostic> &out)
{
    const ProjectIndex &idx = proj.index();
    const CallGraph &cg = proj.callGraph();
    const auto &files = proj.files();
    const auto &fns = idx.functions();

    auto fn_has_guard = [&](int fn) {
        const FunctionDef &d = fns[static_cast<std::size_t>(fn)];
        return rangeHasGuard(*files[static_cast<std::size_t>(
                                 d.fileIdx)],
                             d.open, d.close);
    };
    auto fn_label = [&](int fn) {
        const FunctionDef &d = fns[static_cast<std::size_t>(fn)];
        std::string name = d.className.empty()
                               ? d.name
                               : d.className + "::" + d.name;
        return name + " (" +
               files[static_cast<std::size_t>(d.fileIdx)]->relPath() +
               ":" + std::to_string(d.line) + ")";
    };

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile &f = *files[fi];
        if (!inSrcOrBench(f) || startsWith(f.relPath(), "src/mem/"))
            continue;

        std::set<std::string> vars = physMemVars(f);
        if (const SourceFile *pair = proj.pairOf(f)) {
            std::set<std::string> pv = physMemVars(*pair);
            vars.insert(pv.begin(), pv.end());
        }
        const auto &toks = f.tokens();

        for (std::size_t i = 2; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier ||
                !isAccessMethod(t.text))
                continue;
            if (i + 1 >= toks.size() || toks[i + 1].text != "(")
                continue;
            const Token &sep = toks[i - 1];
            if (sep.text != "." && sep.text != "->")
                continue;
            const Token &recv = toks[i - 2];
            bool phys = false;
            if (recv.kind == TokKind::Identifier &&
                vars.count(recv.text)) {
                phys = true;
            } else if (recv.text == ")" && i >= 4 &&
                       toks[i - 3].text == "(" &&
                       toks[i - 4].kind == TokKind::Identifier &&
                       proj.physMemAccessors().count(
                           toks[i - 4].text)) {
                phys = true; // e.g. sys.csMem().write(...)
            }
            if (!phys)
                continue;

            int sink_fn = idx.functionAt(static_cast<int>(fi), i);
            if (sink_fn < 0) {
                // Access at file/namespace scope: no guard possible.
                if (isMediationOrigin(f.relPath()))
                    report(out, f, t.line, "mediation-path",
                           "PhysicalMemory::" + t.text +
                               " at file scope with no possible "
                               "ownership check");
                continue;
            }
            if (fn_has_guard(sink_fn))
                continue; // mediated locally

            // Walk backwards through src/bench callers until every
            // path is cut by a guard-holding function, or an
            // unguarded CS-side root is reached.
            std::map<int, int> parent; // fn -> next fn toward sink
            std::deque<int> todo;
            parent[sink_fn] = -1;
            todo.push_back(sink_fn);
            int bad_root = -1;
            while (!todo.empty() && bad_root < 0) {
                int cur = todo.front();
                todo.pop_front();
                bool has_caller = false;
                for (const CallerEdge &e : cg.callersOf(cur)) {
                    const CallSite &site =
                        idx.calls()[static_cast<std::size_t>(
                            e.callSiteIdx)];
                    const SourceFile &cf =
                        *files[static_cast<std::size_t>(
                            site.fileIdx)];
                    if (!inSrcOrBenchPath(cf.relPath()))
                        continue; // test-only edge
                    has_caller = true;
                    if (e.callerFn < 0) {
                        // Call at file scope: a root by definition.
                        if (isMediationOrigin(cf.relPath())) {
                            bad_root = cur;
                            break;
                        }
                        continue;
                    }
                    if (parent.count(e.callerFn))
                        continue;
                    if (fn_has_guard(e.callerFn)) {
                        parent[e.callerFn] = cur; // cut, but visited
                        continue;
                    }
                    parent[e.callerFn] = cur;
                    todo.push_back(e.callerFn);
                }
                if (!has_caller) {
                    const FunctionDef &d =
                        fns[static_cast<std::size_t>(cur)];
                    if (isMediationOrigin(
                            files[static_cast<std::size_t>(
                                      d.fileIdx)]
                                ->relPath()))
                        bad_root = cur;
                }
            }
            if (bad_root < 0)
                continue;

            std::string chain = fn_label(bad_root);
            for (int n = parent[bad_root]; n >= 0; n = parent[n]) {
                chain += " -> " + fn_label(n);
                if (n == sink_fn)
                    break;
            }
            report(out, f, t.line, "mediation-path",
                   "PhysicalMemory::" + t.text +
                       " is reachable from a CS-side entry point "
                       "with no ownership-bitmap/range check on the "
                       "path: " + chain);
        }
    }
}

// ------------------------------------------------------------- seed-flow

/** Outcome of classifying where a seed expression's value comes from. */
enum class SeedFlow
{
    Pure,    ///< derived from shardSeed/ShardContext/CLI seed
    Impure,  ///< a literal or unrelated value
    Unknown, ///< depends only on enclosing-function parameters
};

/** Type keywords/utility names that never carry seed provenance. */
bool
isSeedNeutral(const std::string &s)
{
    static const std::set<std::string> names = {
        "std",         "size_t",      "uint64_t",   "uint32_t",
        "uint16_t",    "uint8_t",     "int64_t",    "int32_t",
        "Addr",        "Tick",        "EnclaveId",  "static_cast",
        "const_cast",  "reinterpret_cast", "dynamic_cast",
        "unsigned",    "int",         "long",       "auto",
        "const",
    };
    return names.count(s) > 0;
}

struct SeedFlowCtx
{
    const Project &proj;
    const ProjectIndex &idx;
    const CallGraph &cg;
    /** (fnIdx, paramIdx) -> resolved flow (cycle guard + memo). */
    std::map<std::pair<int, int>, SeedFlow> memo;
    /** Caller site that injected the impure value, for the report. */
    std::string offender;
};

SeedFlow classifyParam(SeedFlowCtx &ctx, int fn_idx, int param_idx,
                       int depth);

/**
 * Classify the argument tokens [begin, end) of file @p file_idx:
 * Pure when at least one seed-derived atom appears and nothing
 * impure does.
 */
SeedFlow
classifyRange(SeedFlowCtx &ctx, int file_idx, std::size_t begin,
              std::size_t end, int depth)
{
    const SourceFile &f =
        *ctx.proj.files()[static_cast<std::size_t>(file_idx)];
    const auto &toks = f.tokens();
    int enclosing = ctx.idx.functionAt(file_idx, begin);
    const FunctionDef *encl_fn =
        enclosing >= 0
            ? &ctx.idx.functions()[static_cast<std::size_t>(
                  enclosing)]
            : nullptr;

    bool pure = false;
    bool unknown = false;
    for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.inDirective || t.kind != TokKind::Identifier)
            continue;
        if (k + 1 < toks.size() && (toks[k + 1].text == "." ||
                                    toks[k + 1].text == "->" ||
                                    toks[k + 1].text == "::"))
            continue; // object/qualifier of a member access
        if (isSeedNeutral(t.text))
            continue;
        if (containsNoCase(t.text, "seed") ||
            containsNoCase(t.text, "rng")) {
            pure = true;
            // A seed-deriving call vouches for its own arguments.
            if (k + 1 < toks.size() && toks[k + 1].text == "(") {
                int d = toks[k + 1].parenDepth;
                while (k + 1 < end && k + 1 < toks.size() &&
                       !(toks[k + 1].text == ")" &&
                         toks[k + 1].parenDepth == d))
                    ++k;
            }
            continue;
        }
        if (encl_fn) {
            auto pit = std::find(encl_fn->params.begin(),
                                 encl_fn->params.end(), t.text);
            if (pit != encl_fn->params.end()) {
                SeedFlow pf = classifyParam(
                    ctx, enclosing,
                    static_cast<int>(pit - encl_fn->params.begin()),
                    depth + 1);
                if (pf == SeedFlow::Impure)
                    return SeedFlow::Impure;
                if (pf == SeedFlow::Pure)
                    pure = true;
                else
                    unknown = true;
                continue;
            }
        }
        if (ctx.offender.empty())
            ctx.offender = f.relPath() + ":" +
                           std::to_string(t.line) + " ('" + t.text +
                           "')";
        return SeedFlow::Impure;
    }
    if (pure)
        return SeedFlow::Pure;
    if (unknown)
        return SeedFlow::Unknown;
    // Literals only (e.g. `Random(7)`): a hard-coded seed that
    // ignores the shard/CLI seed entirely.
    if (ctx.offender.empty())
        ctx.offender = f.relPath() + ":" +
                       std::to_string(begin < toks.size()
                                          ? toks[begin].line
                                          : 0) +
                       " (literal seed)";
    return SeedFlow::Impure;
}

/** What flows into parameter @p param_idx of @p fn_idx, over every
 *  call site in the project? */
SeedFlow
classifyParam(SeedFlowCtx &ctx, int fn_idx, int param_idx, int depth)
{
    if (depth > 8)
        return SeedFlow::Impure; // give up on deep chains
    auto key = std::make_pair(fn_idx, param_idx);
    auto it = ctx.memo.find(key);
    if (it != ctx.memo.end())
        return it->second;
    ctx.memo[key] = SeedFlow::Unknown; // cycle guard

    SeedFlow result = SeedFlow::Unknown;
    bool any_site = false;
    for (const CallerEdge &e : ctx.cg.callersOf(fn_idx)) {
        const CallSite &site =
            ctx.idx.calls()[static_cast<std::size_t>(e.callSiteIdx)];
        if (param_idx >= static_cast<int>(site.args.size()))
            continue; // defaulted argument: trust the default
        any_site = true;
        const auto &range =
            site.args[static_cast<std::size_t>(param_idx)];
        SeedFlow af = classifyRange(ctx, site.fileIdx, range.first,
                                    range.second, depth + 1);
        if (af == SeedFlow::Impure) {
            result = SeedFlow::Impure;
            break;
        }
        if (af == SeedFlow::Pure)
            result = SeedFlow::Pure;
    }
    if (!any_site)
        result = SeedFlow::Impure; // unreachable: cannot prove
    ctx.memo[key] = result;
    return result;
}

void
checkSeedFlow(const Project &proj, std::vector<Diagnostic> &out)
{
    const ProjectIndex &idx = proj.index();
    const CallGraph &cg = proj.callGraph();
    const auto &files = proj.files();

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile &f = *files[fi];
        // src/sim/ is the seed infrastructure itself (ShardContext
        // construction from the CLI seed happens there).
        if (!inSrcOrBench(f) || startsWith(f.relPath(), "src/sim/"))
            continue;
        const auto &toks = f.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier)
                continue;

            // The three construction shapes: `Random(...)`
            // temporaries, `Random name(...)`/`Random name{...}`
            // locals, and make_shared/make_unique<Random>(...).
            std::size_t arg_open = 0;
            if (t.text == "Random") {
                if (i > 0 && (toks[i - 1].text == "class" ||
                              toks[i - 1].text == "struct" ||
                              toks[i - 1].text == "<"))
                    continue;
                if (i + 1 < toks.size() &&
                    toks[i + 1].text == "(") {
                    if (i > 0 &&
                        toks[i - 1].kind == TokKind::Identifier)
                        continue; // `Type Random(` -- not a ctor
                    arg_open = i + 1;
                } else if (i + 2 < toks.size() &&
                           toks[i + 1].kind == TokKind::Identifier &&
                           (toks[i + 2].text == "(" ||
                            toks[i + 2].text == "{")) {
                    if (f.enclosingFunction(i) < 0)
                        continue; // function declaration
                    arg_open = i + 2;
                } else {
                    continue;
                }
            } else if ((t.text == "make_shared" ||
                        t.text == "make_unique") &&
                       i + 4 < toks.size() &&
                       toks[i + 1].text == "<" &&
                       toks[i + 2].text == "Random" &&
                       toks[i + 3].text == ">" &&
                       toks[i + 4].text == "(") {
                arg_open = i + 4;
            } else {
                continue;
            }

            // Find the matching close of the argument list.
            const std::string close_text =
                toks[arg_open].text == "{" ? "}" : ")";
            int depth = close_text == ")"
                            ? toks[arg_open].parenDepth
                            : toks[arg_open].braceDepth;
            std::size_t arg_close = arg_open + 1;
            while (arg_close < toks.size() &&
                   !(toks[arg_close].text == close_text &&
                     (close_text == ")"
                          ? toks[arg_close].parenDepth
                          : toks[arg_close].braceDepth) == depth))
                ++arg_close;
            if (arg_close == arg_open + 1)
                continue; // `Random r;` / `Random()`: default state

            SeedFlowCtx ctx{proj, idx, cg, {}, {}};
            SeedFlow flow =
                classifyRange(ctx, static_cast<int>(fi),
                              arg_open + 1, arg_close, 0);
            if (flow == SeedFlow::Pure)
                continue;
            std::string why =
                ctx.offender.empty()
                    ? std::string("value not derived from any "
                                  "seed-carrying expression")
                    : "impure value from " + ctx.offender;
            report(out, f, t.line, "seed-flow",
                   "Random constructed from a value outside the "
                   "ShardContext/shardSeed/CLI-seed dataflow (" +
                       why +
                       ") -- derive every RNG seed via "
                       "shardSeed() so runs stay reproducible");
        }
    }
}

// ------------------------------------------------------ stat-registration

bool
isStatType(const std::string &s)
{
    return s == "Scalar" || s == "Average" || s == "Distribution";
}

/** Identifiers appearing inside registerScalar/... call arguments. */
std::set<std::string>
registeredStatNames(const SourceFile &f)
{
    std::set<std::string> names;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier ||
            (t.text != "registerScalar" &&
             t.text != "registerAverage" &&
             t.text != "registerDistribution"))
            continue;
        if (toks[i + 1].text != "(")
            continue;
        int depth = toks[i + 1].parenDepth;
        for (std::size_t j = i + 2; j < toks.size(); ++j) {
            if (toks[j].text == ")" && toks[j].parenDepth == depth)
                break;
            if (toks[j].kind == TokKind::Identifier)
                names.insert(toks[j].text);
        }
    }
    return names;
}

void
checkStatRegistration(const SourceFile &f, const Project &proj,
                      std::vector<Diagnostic> &out)
{
    if (!inSrcOrBench(f))
        return; // test-local stats need no export wiring
    const auto &toks = f.tokens();
    std::set<std::string> registered = registeredStatNames(f);
    if (const SourceFile *pair = proj.pairOf(f)) {
        std::set<std::string> pr = registeredStatNames(*pair);
        registered.insert(pr.begin(), pr.end());
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            !isStatType(t.text) || t.parenDepth > 0)
            continue;
        if (i > 0 && (toks[i - 1].text == "class" ||
                      toks[i - 1].text == "struct" ||
                      toks[i - 1].text == "<"))
            continue; // class definition or template argument
        std::size_t j = i + 1;
        if (j < toks.size() &&
            (toks[j].text == "*" || toks[j].text == "&"))
            continue; // pointer/reference, not an owned stat
        // Walk the declarator list: name (, name)* up to ';'.
        while (j < toks.size() &&
               toks[j].kind == TokKind::Identifier) {
            const std::string &name = toks[j].text;
            if (j + 1 < toks.size() && toks[j + 1].text == "(")
                break; // function returning a stat type
            if (!registered.count(name))
                report(out, f, toks[j].line, "stat-registration",
                       t.text + " '" + name +
                           "' is never registered with a StatGroup "
                           "(register" + t.text +
                           ") -- it would be silently missing from "
                           "the stats export");
            if (j + 1 < toks.size() && toks[j + 1].text == "," &&
                j + 2 < toks.size() &&
                toks[j + 2].kind == TokKind::Identifier) {
                j += 2;
                continue;
            }
            break;
        }
    }
}

// ----------------------------------------------------------- no-wallclock

void
checkNoWallclock(const SourceFile &f, const Project &,
                 std::vector<Diagnostic> &out)
{
    if (!startsWith(f.relPath(), "src/"))
        return;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier)
            continue;
        if (t.text == "chrono" || t.text == "random_device" ||
            t.text == "gettimeofday" || t.text == "clock_gettime" ||
            t.text == "timespec_get" || t.text == "mt19937" ||
            t.text == "mt19937_64") {
            report(out, f, t.line, "no-wallclock",
                   "'" + t.text +
                       "' breaks determinism -- simulated time comes "
                       "from EventQueue, randomness from "
                       "sim/random.hh");
            continue;
        }
        if (t.text == "time" || t.text == "rand" ||
            t.text == "srand" || t.text == "clock") {
            if (i + 1 >= toks.size() || toks[i + 1].text != "(")
                continue;
            bool member_call =
                i > 0 &&
                (toks[i - 1].text == "." || toks[i - 1].text == "->");
            bool non_std_qualified =
                i > 1 && toks[i - 1].text == "::" &&
                toks[i - 2].kind == TokKind::Identifier &&
                toks[i - 2].text != "std";
            // A preceding type token means this is a *declaration*
            // of a same-named function (e.g. `const ClockDomain
            // &clock() const`), not a call into libc.
            static const std::set<std::string> not_types = {
                "return", "co_return", "case", "else", "do",
                "throw", "co_yield", "new", "delete", "sizeof",
            };
            bool declaration =
                i > 0 &&
                ((toks[i - 1].kind == TokKind::Identifier &&
                  !not_types.count(toks[i - 1].text)) ||
                 toks[i - 1].text == "&" || toks[i - 1].text == "*");
            if (member_call || non_std_qualified || declaration)
                continue;
            report(out, f, t.line, "no-wallclock",
                   "call to '" + t.text +
                       "()' breaks determinism -- simulated time "
                       "comes from EventQueue, randomness from "
                       "sim/random.hh");
        }
    }
}

// ---------------------------------------------------------- trace-pairing

void
checkTracePairing(const SourceFile &f, const Project &,
                  std::vector<Diagnostic> &out)
{
    const auto &toks = f.tokens();
    for (const Block &blk : f.blocks()) {
        if (blk.kind != Block::Kind::Function)
            continue;
        int begins = 0;
        int ends = 0;
        for (std::size_t i = blk.open + 1;
             i < blk.close && i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier)
                continue;
            // Only count macros/calls belonging to *this* function,
            // not to nested function definitions (local classes).
            if (f.enclosingFunction(i) !=
                static_cast<int>(&blk - f.blocks().data()))
                continue;
            if (t.text == "HT_TRACE_BEGIN") {
                ++begins;
            } else if (t.text == "HT_TRACE_END") {
                ++ends;
            } else if ((t.text == "begin" || t.text == "end") &&
                       i > 0 && i + 2 < toks.size() &&
                       (toks[i - 1].text == "." ||
                        toks[i - 1].text == "->") &&
                       toks[i + 1].text == "(" &&
                       toks[i + 2].text == "TraceCategory") {
                // TraceSink::begin/end called directly.
                (t.text == "begin" ? begins : ends)++;
            }
        }
        if (begins != ends)
            report(out, f, toks[blk.open].line, "trace-pairing",
                   "function '" + blk.name + "' opens " +
                       std::to_string(begins) +
                       " trace span(s) but closes " +
                       std::to_string(ends) +
                       " -- unbalanced spans corrupt the Chrome "
                       "trace nesting");
    }
}

// ------------------------------------------------------ no-raw-owning-new

void
checkNoRawOwningNew(const SourceFile &f, const Project &proj,
                    std::vector<Diagnostic> &out)
{
    if (!inSrcOrBench(f))
        return;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            t.text != "new")
            continue;
        if (i > 0 && (toks[i - 1].text == "." ||
                      toks[i - 1].text == "->" ||
                      toks[i - 1].text == "::"))
            continue; // member/qualified name, not the operator
        int fb = f.enclosingFunction(i);
        if (fb >= 0) {
            const Block &blk =
                f.blocks()[static_cast<std::size_t>(fb)];
            bool is_ctor = !blk.className.empty() &&
                           blk.name == blk.className;
            if (is_ctor &&
                proj.derivesFrom(blk.className, "SimObject"))
                continue;
        }
        report(out, f, t.line, "no-raw-owning-new",
               "raw 'new' outside a SimObject factory constructor "
               "-- use std::make_unique or a container");
    }
}

// --------------------------------------------------------- shard-isolation

/**
 * Files implementing the parallel driver or shard bodies: everything
 * they touch must be owned per shard, so process-wide singleton
 * accessors are additionally off limits there.
 */
bool
isShardManaged(const std::string &rel)
{
    return startsWith(rel, "src/sim/") &&
           (rel.find("shard") != std::string::npos ||
            rel.find("parallel") != std::string::npos);
}

/** Types whose instances hold mutable simulation state a shard must
 *  own: sharing one across shards breaks run determinism. */
bool
isShardStateType(const std::string &s)
{
    return s == "Random" || s == "EventQueue";
}

void
checkShardIsolation(const SourceFile &f, const Project &,
                    std::vector<Diagnostic> &out)
{
    if (!inSrcOrBench(f))
        return;
    const auto &toks = f.tokens();

    // (a) No namespace-scope, static, or thread_local mutable
    // Random/EventQueue anywhere shards may run: a singleton RNG or
    // queue makes shard results depend on worker scheduling.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            !isShardStateType(t.text) || t.parenDepth > 0)
            continue;
        if (i > 0 && (toks[i - 1].text == "class" ||
                      toks[i - 1].text == "struct" ||
                      toks[i - 1].text == "<"))
            continue; // forward declaration or template argument
        if (i + 1 < toks.size() && toks[i + 1].text == "::")
            continue; // qualified use, not a declaration

        // Storage-class / cv qualifiers directly before the type.
        bool is_shared = false; // static or thread_local
        bool is_const = false;
        for (std::size_t k = i; k-- > 0;) {
            const std::string &p = toks[k].text;
            if (p == "static" || p == "thread_local")
                is_shared = true;
            else if (p == "const" || p == "constexpr")
                is_const = true;
            else
                break;
        }

        int blk = f.enclosingBlock(i);
        Block::Kind kind = blk < 0
                               ? Block::Kind::Namespace
                               : f.blocks()[static_cast<std::size_t>(
                                                blk)]
                                     .kind;
        bool namespace_scope = kind == Block::Kind::Namespace;
        if (is_const || (!namespace_scope && !is_shared))
            continue; // immutable, or owned by an object/frame

        // Find the declarator; skip function declarations and
        // definitions (`Random &stream()`).
        std::size_t j = i + 1;
        while (j < toks.size() &&
               (toks[j].text == "*" || toks[j].text == "&" ||
                toks[j].text == "const"))
            ++j;
        if (j >= toks.size() || toks[j].kind != TokKind::Identifier)
            continue;
        if (j + 1 < toks.size() && toks[j + 1].text == "(" &&
            f.enclosingFunction(i) < 0)
            continue; // function signature, not a variable

        report(out, f, toks[j].line, "shard-isolation",
               (is_shared ? "static " : "global ") + t.text + " '" +
                   toks[j].text +
                   "' is shared mutable simulation state -- parallel "
                   "shards must own their Random/EventQueue (see "
                   "ShardContext in sim/shard.hh)");
    }

    // (b) The driver and shard plumbing must not reach for
    // process-wide singletons at all.
    if (!isShardManaged(f.relPath()))
        return;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            (t.text != "global" && t.text != "instance"))
            continue;
        const std::string &sep = toks[i - 1].text;
        if ((sep != "." && sep != "->" && sep != "::") ||
            toks[i + 1].text != "(")
            continue;
        report(out, f, t.line, "shard-isolation",
               "singleton accessor '" + t.text +
                   "()' in shard-managed code -- shards may only "
                   "touch state handed to them via ShardContext");
    }
}

// --------------------------------------------------------- header-hygiene

void
checkHeaderHygiene(const SourceFile &f, const Project &,
                   std::vector<Diagnostic> &out)
{
    if (!f.isHeader())
        return;
    const auto &toks = f.tokens();

    bool has_pragma_once = false;
    std::string ifndef_name;
    bool has_guard = false;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "#" || !toks[i].inDirective)
            continue;
        if (toks[i + 1].text == "pragma" &&
            toks[i + 2].text == "once")
            has_pragma_once = true;
        if (toks[i + 1].text == "ifndef" && ifndef_name.empty() &&
            toks[i + 2].kind == TokKind::Identifier)
            ifndef_name = toks[i + 2].text;
        if (toks[i + 1].text == "define" && !ifndef_name.empty() &&
            toks[i + 2].text == ifndef_name)
            has_guard = true;
    }
    if (!has_pragma_once && !has_guard)
        report(out, f, 1, "header-hygiene",
               "header has neither '#pragma once' nor a matching "
               "#ifndef/#define include guard");

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].inDirective &&
            toks[i].kind == TokKind::Identifier &&
            toks[i].text == "using" &&
            toks[i + 1].text == "namespace")
            report(out, f, toks[i].line, "header-hygiene",
                   "'using namespace' in a header leaks into every "
                   "includer");
    }
}

// ------------------------------------------------- hot-loop-dispatch

/**
 * Matching '>' of a template argument list whose '<' is at @p lt;
 * 0 when the list never closes (then this was a comparison, not a
 * template argument list).
 */
std::size_t
matchAngle(const std::vector<Token> &toks, std::size_t lt)
{
    int depth = 0;
    for (std::size_t i = lt; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0)
                return i;
        } else if (t == ";" || t == "{" || t == "}") {
            break;
        }
    }
    return 0;
}

/** Is toks[i..] the start of `std :: name` ? Returns index past it. */
std::size_t
matchStdName(const std::vector<Token> &toks, std::size_t i,
             const char *name)
{
    if (i + 2 < toks.size() && toks[i].text == "std" &&
        toks[i + 1].text == "::" && toks[i + 2].text == name)
        return i + 3;
    return 0;
}

/**
 * Dispatch declarations the project knows about: which names are
 * std::function-typed callables and which are unique_ptr members,
 * and which classes act as interfaces (someone derives from them).
 */
struct DispatchDecls
{
    std::set<std::string> functionTypes; ///< aliases of std::function
    std::set<std::string> functionVars;  ///< variables of those types
    std::map<std::string, std::string> uniquePtrVars; ///< name -> T
    std::set<std::string> interfaces; ///< classes with derived classes
};

DispatchDecls
collectDispatchDecls(const Project &proj)
{
    DispatchDecls d;
    // Pass 1: `using X = std::function<...>` aliases, class names.
    std::vector<std::string> classes;
    for (const auto &file : proj.files()) {
        const auto &toks = file->tokens();
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (toks[i].text == "using" &&
                toks[i + 1].kind == TokKind::Identifier &&
                toks[i + 2].text == "=") {
                if (matchStdName(toks, i + 3, "function"))
                    d.functionTypes.insert(toks[i + 1].text);
            }
        }
        for (const Block &blk : file->blocks())
            if (blk.kind == Block::Kind::Type && !blk.name.empty())
                classes.push_back(blk.name);
    }
    // A class is an interface when any project class derives from
    // it (transitively) -- calls through a pointer to it dispatch
    // virtually in practice.
    for (const std::string &c : classes) {
        std::deque<std::string> work(proj.basesOf(c).begin(),
                                     proj.basesOf(c).end());
        while (!work.empty()) {
            std::string base = work.front();
            work.pop_front();
            if (!d.interfaces.insert(base).second)
                continue;
            for (const std::string &b : proj.basesOf(base))
                work.push_back(b);
        }
    }
    // Pass 2: variable/member declarations of the interesting types.
    for (const auto &file : proj.files()) {
        const auto &toks = file->tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].inDirective)
                continue;
            // `std::function<...> name` (members, locals, params).
            if (std::size_t after = matchStdName(toks, i, "function");
                after && after < toks.size() &&
                toks[after].text == "<") {
                std::size_t gt = matchAngle(toks, after);
                if (gt && gt + 1 < toks.size() &&
                    toks[gt + 1].kind == TokKind::Identifier)
                    d.functionVars.insert(toks[gt + 1].text);
                continue;
            }
            // `Alias name` where Alias names a std::function type.
            if (toks[i].kind == TokKind::Identifier &&
                d.functionTypes.count(toks[i].text) &&
                i + 1 < toks.size() &&
                toks[i + 1].kind == TokKind::Identifier)
                d.functionVars.insert(toks[i + 1].text);
            // `std::unique_ptr<T> name`.
            if (std::size_t after =
                    matchStdName(toks, i, "unique_ptr");
                after && after < toks.size() &&
                toks[after].text == "<" && after + 1 < toks.size() &&
                toks[after + 1].kind == TokKind::Identifier) {
                std::size_t gt = matchAngle(toks, after);
                if (gt && gt + 1 < toks.size() &&
                    toks[gt + 1].kind == TokKind::Identifier)
                    d.uniquePtrVars[toks[gt + 1].text] =
                        toks[after + 1].text;
            }
        }
    }
    return d;
}

/** Function blocks carrying the hot-loop annotation comment. */
std::vector<std::size_t>
hotLoopFunctions(const SourceFile &f)
{
    std::vector<std::size_t> hot;
    const auto &toks = f.tokens();
    for (const Comment &cm : f.comments()) {
        if (cm.text.find("htlint: hot-loop") == std::string::npos ||
            cm.text.find("hot-loop-dispatch") != std::string::npos)
            continue;
        // The annotation marks the next function defined after it:
        // the first Function block whose body opens at or below the
        // comment (the signature itself may span template and
        // return-type lines between the two).
        std::size_t best = 0;
        bool found = false;
        for (std::size_t b = 0; b < f.blocks().size(); ++b) {
            const Block &blk = f.blocks()[b];
            if (blk.kind != Block::Kind::Function)
                continue;
            if (toks[blk.open].line < cm.endLine)
                continue;
            if (!found || blk.open < f.blocks()[best].open) {
                best = b;
                found = true;
            }
        }
        if (found)
            hot.push_back(best);
    }
    return hot;
}

void
checkHotLoopDispatch(const Project &proj, std::vector<Diagnostic> &out)
{
    DispatchDecls decls = collectDispatchDecls(proj);
    for (const auto &file : proj.files()) {
        const SourceFile &f = *file;
        const auto &toks = f.tokens();
        for (std::size_t b : hotLoopFunctions(f)) {
            const Block &blk = f.blocks()[b];
            for (std::size_t i = blk.open + 1;
                 i < blk.close && i < toks.size(); ++i) {
                const Token &t = toks[i];
                if (t.inDirective || t.kind != TokKind::Identifier)
                    continue;
                // `callable(...)` through a std::function --
                // opaque indirect call per op.
                if (decls.functionVars.count(t.text) &&
                    i + 1 < toks.size() && toks[i + 1].text == "(" &&
                    (i == 0 || (toks[i - 1].text != "." &&
                                toks[i - 1].text != "->" &&
                                toks[i - 1].text != "::"))) {
                    report(out, f, t.line, "hot-loop-dispatch",
                           "call through std::function '" + t.text +
                               "' inside hot-loop function '" +
                               blk.name +
                               "' -- hoist the target out of the "
                               "loop or take the cold path "
                               "out-of-line");
                    continue;
                }
                // `ptr->method(...)` where ptr is a unique_ptr to a
                // class with derived classes: a virtual dispatch on
                // the per-instruction path.
                auto up = decls.uniquePtrVars.find(t.text);
                if (up != decls.uniquePtrVars.end() &&
                    decls.interfaces.count(up->second) &&
                    i + 3 < toks.size() && toks[i + 1].text == "->" &&
                    toks[i + 2].kind == TokKind::Identifier &&
                    toks[i + 3].text == "(") {
                    report(out, f, t.line, "hot-loop-dispatch",
                           "virtual call '" + t.text + "->" +
                               toks[i + 2].text +
                               "()' through unique_ptr<" +
                               up->second +
                               "> inside hot-loop function '" +
                               blk.name +
                               "' -- devirtualize: select the "
                               "concrete type once per run and "
                               "dispatch statically inside the "
                               "loop");
                }
            }
        }
    }
}

} // namespace

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> rules = {
        {"mediation-path",
         "every call path from a CS-side entry point to a "
         "PhysicalMemory access outside src/mem/ must pass an "
         "ownership-bitmap/range check (whole-program)",
         nullptr, &checkMediationPath},
        {"lockset",
         "fields annotated '// htlint: guarded-by(m)' may only be "
         "accessed where m is held -- lexically or proven through "
         "every caller's lockset (whole-program)",
         nullptr, &checkLockset},
        {"lock-order",
         "the global lock-acquisition-order graph (including "
         "acquisitions reached through calls) must be acyclic -- "
         "a cycle is a potential deadlock (whole-program)",
         nullptr, &checkLockOrder},
        {"atomic-sanity",
         "no split load/store read-modify-writes on std::atomic, "
         "no relaxed stores to readiness flags, no double-checked "
         "locking without acquire (whole-program)",
         nullptr, &checkAtomicSanity},
        {"shard-escape",
         "mutable state reachable from shard-executed code "
         "(ShardContext/runShardedBench roots) must be "
         "lock-guarded, atomic, or shard-owned (whole-program)",
         nullptr, &checkShardEscape},
        {"seed-flow",
         "every Random must be constructed from ShardContext/"
         "shardSeed/CLI-seed derived values (whole-program)",
         nullptr, &checkSeedFlow},
        {"secret-flow",
         "no enclave secret (device keys, KDF-derived keys, private "
         "page contents) may reach a trace/stats/log/stdout/mailbox/"
         "CS-memory sink unencrypted (whole-program)",
         nullptr, &checkSecretFlow},
        {"stat-registration",
         "every Scalar/Average/Distribution must be registered with "
         "a StatGroup so the JSON export sees it",
         &checkStatRegistration},
        {"no-wallclock",
         "no std::chrono / time() / rand() / std::random_device in "
         "src/ -- time comes from EventQueue, randomness from "
         "sim/random.hh",
         &checkNoWallclock},
        {"trace-pairing",
         "HT_TRACE begin/end (and TraceSink::begin/end) must balance "
         "within each function",
         &checkTracePairing},
        {"no-raw-owning-new",
         "no raw owning 'new' outside SimObject factory "
         "constructors",
         &checkNoRawOwningNew},
        {"shard-isolation",
         "no global/static mutable Random or EventQueue, and no "
         "singleton accessors in shard-managed code -- parallel "
         "shards own their state",
         &checkShardIsolation},
        {"header-hygiene",
         "headers need an include guard and must not contain "
         "'using namespace'",
         &checkHeaderHygiene},
        {"hot-loop-dispatch",
         "functions annotated '// htlint: hot-loop' must not call "
         "through std::function or virtually through a unique_ptr "
         "to an interface -- per-op indirect dispatch belongs "
         "outside the instruction path (whole-program)",
         nullptr, &checkHotLoopDispatch},
    };
    return rules;
}

} // namespace hypertee::htlint
