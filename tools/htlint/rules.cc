/**
 * @file
 * The built-in htlint rules. Each encodes one HyperTEE invariant;
 * tools/htlint/README.md documents the invariant each protects and
 * how to suppress a finding.
 */

#include "tools/htlint/rules.hh"

#include <algorithm>
#include <array>

namespace hypertee::htlint
{

namespace
{

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inSrcOrBench(const SourceFile &f)
{
    return startsWith(f.relPath(), "src/") ||
           startsWith(f.relPath(), "bench/");
}

void
report(std::vector<Diagnostic> &out, const SourceFile &f, int line,
       const char *rule, std::string message)
{
    out.push_back({f.relPath(), line, rule, std::move(message)});
}

bool
isAccessMethod(const std::string &s)
{
    static const std::array<const char *, 7> names = {
        "read",      "write",      "zero",   "read64",
        "write64",   "readBytes",  "writeBytes"};
    return std::find_if(names.begin(), names.end(), [&](const char *n) {
               return s == n;
           }) != names.end();
}

bool
isMediationGuard(const std::string &s)
{
    return s == "overlapsRange" || s == "containsRange" ||
           s == "isEnclavePage" || s == "isEnclaveAddr" ||
           s == "csAccessAllowed";
}

/**
 * Names of variables/members of type PhysicalMemory declared in
 * @p f (plain, pointer, reference, or unique_ptr/shared_ptr).
 */
std::set<std::string>
physMemVars(const SourceFile &f)
{
    std::set<std::string> vars;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            t.text != "PhysicalMemory")
            continue;
        if (i > 0 && (toks[i - 1].text == "class" ||
                      toks[i - 1].text == "struct"))
            continue; // forward declaration
        if (i + 1 < toks.size() && toks[i + 1].text == "::")
            continue; // qualified use, not a declaration
        std::size_t j = i + 1;
        // unique_ptr<PhysicalMemory> name
        if (i > 0 && toks[i - 1].text == "<" && j < toks.size() &&
            toks[j].text == ">")
            ++j;
        while (j < toks.size() && (toks[j].text == "*" ||
                                   toks[j].text == "&" ||
                                   toks[j].text == "const"))
            ++j;
        if (j >= toks.size() ||
            toks[j].kind != TokKind::Identifier)
            continue;
        // `PhysicalMemory name(...)` at class/namespace scope is a
        // function declaration, inside a function it is a variable
        // with constructor arguments.
        if (j + 1 < toks.size() && toks[j + 1].text == "(" &&
            f.enclosingFunction(i) < 0)
            continue;
        vars.insert(toks[j].text);
    }
    return vars;
}

// ------------------------------------------------------ bitmap-mediation

void
checkBitmapMediation(const SourceFile &f, const Project &proj,
                     std::vector<Diagnostic> &out)
{
    if (!inSrcOrBench(f) || startsWith(f.relPath(), "src/mem/") ||
        f.relPath() == "src/fabric/ihub.cc")
        return;

    std::set<std::string> vars = physMemVars(f);
    if (const SourceFile *pair = proj.pairOf(f)) {
        std::set<std::string> pv = physMemVars(*pair);
        vars.insert(pv.begin(), pv.end());
    }
    const auto &toks = f.tokens();

    for (std::size_t i = 2; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            !isAccessMethod(t.text))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "(")
            continue;
        const Token &sep = toks[i - 1];
        if (sep.text != "." && sep.text != "->")
            continue;
        const Token &recv = toks[i - 2];
        bool phys = false;
        if (recv.kind == TokKind::Identifier && vars.count(recv.text)) {
            phys = true;
        } else if (recv.text == ")" && i >= 4 &&
                   toks[i - 3].text == "(" &&
                   toks[i - 4].kind == TokKind::Identifier &&
                   proj.physMemAccessors().count(toks[i - 4].text)) {
            phys = true; // e.g. sys.csMem().write(...)
        }
        if (!phys)
            continue;

        int fb = f.enclosingFunction(i);
        bool guarded = false;
        if (fb >= 0) {
            const Block &blk =
                f.blocks()[static_cast<std::size_t>(fb)];
            for (std::size_t k = blk.open + 1; k < i; ++k) {
                const Token &g = toks[k];
                if (!g.inDirective &&
                    g.kind == TokKind::Identifier &&
                    isMediationGuard(g.text)) {
                    guarded = true;
                    break;
                }
            }
        }
        if (!guarded)
            report(out, f, t.line, "bitmap-mediation",
                   "direct PhysicalMemory::" + t.text +
                       " outside src/mem/ without a preceding "
                       "ownership-bitmap/range check "
                       "(overlapsRange/containsRange/isEnclavePage/"
                       "csAccessAllowed) in the same function");
    }
}

// ------------------------------------------------------ stat-registration

bool
isStatType(const std::string &s)
{
    return s == "Scalar" || s == "Average" || s == "Distribution";
}

/** Identifiers appearing inside registerScalar/... call arguments. */
std::set<std::string>
registeredStatNames(const SourceFile &f)
{
    std::set<std::string> names;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier ||
            (t.text != "registerScalar" &&
             t.text != "registerAverage" &&
             t.text != "registerDistribution"))
            continue;
        if (toks[i + 1].text != "(")
            continue;
        int depth = toks[i + 1].parenDepth;
        for (std::size_t j = i + 2; j < toks.size(); ++j) {
            if (toks[j].text == ")" && toks[j].parenDepth == depth)
                break;
            if (toks[j].kind == TokKind::Identifier)
                names.insert(toks[j].text);
        }
    }
    return names;
}

void
checkStatRegistration(const SourceFile &f, const Project &proj,
                      std::vector<Diagnostic> &out)
{
    const auto &toks = f.tokens();
    std::set<std::string> registered = registeredStatNames(f);
    if (const SourceFile *pair = proj.pairOf(f)) {
        std::set<std::string> pr = registeredStatNames(*pair);
        registered.insert(pr.begin(), pr.end());
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            !isStatType(t.text) || t.parenDepth > 0)
            continue;
        if (i > 0 && (toks[i - 1].text == "class" ||
                      toks[i - 1].text == "struct" ||
                      toks[i - 1].text == "<"))
            continue; // class definition or template argument
        std::size_t j = i + 1;
        if (j < toks.size() &&
            (toks[j].text == "*" || toks[j].text == "&"))
            continue; // pointer/reference, not an owned stat
        // Walk the declarator list: name (, name)* up to ';'.
        while (j < toks.size() &&
               toks[j].kind == TokKind::Identifier) {
            const std::string &name = toks[j].text;
            if (j + 1 < toks.size() && toks[j + 1].text == "(")
                break; // function returning a stat type
            if (!registered.count(name))
                report(out, f, toks[j].line, "stat-registration",
                       t.text + " '" + name +
                           "' is never registered with a StatGroup "
                           "(register" + t.text +
                           ") -- it would be silently missing from "
                           "the stats export");
            if (j + 1 < toks.size() && toks[j + 1].text == "," &&
                j + 2 < toks.size() &&
                toks[j + 2].kind == TokKind::Identifier) {
                j += 2;
                continue;
            }
            break;
        }
    }
}

// ----------------------------------------------------------- no-wallclock

void
checkNoWallclock(const SourceFile &f, const Project &,
                 std::vector<Diagnostic> &out)
{
    if (!startsWith(f.relPath(), "src/"))
        return;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier)
            continue;
        if (t.text == "chrono" || t.text == "random_device" ||
            t.text == "gettimeofday" || t.text == "clock_gettime" ||
            t.text == "timespec_get" || t.text == "mt19937" ||
            t.text == "mt19937_64") {
            report(out, f, t.line, "no-wallclock",
                   "'" + t.text +
                       "' breaks determinism -- simulated time comes "
                       "from EventQueue, randomness from "
                       "sim/random.hh");
            continue;
        }
        if (t.text == "time" || t.text == "rand" ||
            t.text == "srand" || t.text == "clock") {
            if (i + 1 >= toks.size() || toks[i + 1].text != "(")
                continue;
            bool member_call =
                i > 0 &&
                (toks[i - 1].text == "." || toks[i - 1].text == "->");
            bool non_std_qualified =
                i > 1 && toks[i - 1].text == "::" &&
                toks[i - 2].kind == TokKind::Identifier &&
                toks[i - 2].text != "std";
            // A preceding type token means this is a *declaration*
            // of a same-named function (e.g. `const ClockDomain
            // &clock() const`), not a call into libc.
            static const std::set<std::string> not_types = {
                "return", "co_return", "case", "else", "do",
                "throw", "co_yield", "new", "delete", "sizeof",
            };
            bool declaration =
                i > 0 &&
                ((toks[i - 1].kind == TokKind::Identifier &&
                  !not_types.count(toks[i - 1].text)) ||
                 toks[i - 1].text == "&" || toks[i - 1].text == "*");
            if (member_call || non_std_qualified || declaration)
                continue;
            report(out, f, t.line, "no-wallclock",
                   "call to '" + t.text +
                       "()' breaks determinism -- simulated time "
                       "comes from EventQueue, randomness from "
                       "sim/random.hh");
        }
    }
}

// ---------------------------------------------------------- trace-pairing

void
checkTracePairing(const SourceFile &f, const Project &,
                  std::vector<Diagnostic> &out)
{
    const auto &toks = f.tokens();
    for (const Block &blk : f.blocks()) {
        if (blk.kind != Block::Kind::Function)
            continue;
        int begins = 0;
        int ends = 0;
        for (std::size_t i = blk.open + 1;
             i < blk.close && i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier)
                continue;
            // Only count macros/calls belonging to *this* function,
            // not to nested function definitions (local classes).
            if (f.enclosingFunction(i) !=
                static_cast<int>(&blk - f.blocks().data()))
                continue;
            if (t.text == "HT_TRACE_BEGIN") {
                ++begins;
            } else if (t.text == "HT_TRACE_END") {
                ++ends;
            } else if ((t.text == "begin" || t.text == "end") &&
                       i > 0 && i + 2 < toks.size() &&
                       (toks[i - 1].text == "." ||
                        toks[i - 1].text == "->") &&
                       toks[i + 1].text == "(" &&
                       toks[i + 2].text == "TraceCategory") {
                // TraceSink::begin/end called directly.
                (t.text == "begin" ? begins : ends)++;
            }
        }
        if (begins != ends)
            report(out, f, toks[blk.open].line, "trace-pairing",
                   "function '" + blk.name + "' opens " +
                       std::to_string(begins) +
                       " trace span(s) but closes " +
                       std::to_string(ends) +
                       " -- unbalanced spans corrupt the Chrome "
                       "trace nesting");
    }
}

// ------------------------------------------------------ no-raw-owning-new

void
checkNoRawOwningNew(const SourceFile &f, const Project &proj,
                    std::vector<Diagnostic> &out)
{
    if (!inSrcOrBench(f))
        return;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            t.text != "new")
            continue;
        if (i > 0 && (toks[i - 1].text == "." ||
                      toks[i - 1].text == "->" ||
                      toks[i - 1].text == "::"))
            continue; // member/qualified name, not the operator
        int fb = f.enclosingFunction(i);
        if (fb >= 0) {
            const Block &blk =
                f.blocks()[static_cast<std::size_t>(fb)];
            bool is_ctor = !blk.className.empty() &&
                           blk.name == blk.className;
            if (is_ctor &&
                proj.derivesFrom(blk.className, "SimObject"))
                continue;
        }
        report(out, f, t.line, "no-raw-owning-new",
               "raw 'new' outside a SimObject factory constructor "
               "-- use std::make_unique or a container");
    }
}

// --------------------------------------------------------- shard-isolation

/**
 * Files implementing the parallel driver or shard bodies: everything
 * they touch must be owned per shard, so process-wide singleton
 * accessors are additionally off limits there.
 */
bool
isShardManaged(const std::string &rel)
{
    return startsWith(rel, "src/sim/") &&
           (rel.find("shard") != std::string::npos ||
            rel.find("parallel") != std::string::npos);
}

/** Types whose instances hold mutable simulation state a shard must
 *  own: sharing one across shards breaks run determinism. */
bool
isShardStateType(const std::string &s)
{
    return s == "Random" || s == "EventQueue";
}

void
checkShardIsolation(const SourceFile &f, const Project &,
                    std::vector<Diagnostic> &out)
{
    if (!inSrcOrBench(f))
        return;
    const auto &toks = f.tokens();

    // (a) No namespace-scope, static, or thread_local mutable
    // Random/EventQueue anywhere shards may run: a singleton RNG or
    // queue makes shard results depend on worker scheduling.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            !isShardStateType(t.text) || t.parenDepth > 0)
            continue;
        if (i > 0 && (toks[i - 1].text == "class" ||
                      toks[i - 1].text == "struct" ||
                      toks[i - 1].text == "<"))
            continue; // forward declaration or template argument
        if (i + 1 < toks.size() && toks[i + 1].text == "::")
            continue; // qualified use, not a declaration

        // Storage-class / cv qualifiers directly before the type.
        bool is_shared = false; // static or thread_local
        bool is_const = false;
        for (std::size_t k = i; k-- > 0;) {
            const std::string &p = toks[k].text;
            if (p == "static" || p == "thread_local")
                is_shared = true;
            else if (p == "const" || p == "constexpr")
                is_const = true;
            else
                break;
        }

        int blk = f.enclosingBlock(i);
        Block::Kind kind = blk < 0
                               ? Block::Kind::Namespace
                               : f.blocks()[static_cast<std::size_t>(
                                                blk)]
                                     .kind;
        bool namespace_scope = kind == Block::Kind::Namespace;
        if (is_const || (!namespace_scope && !is_shared))
            continue; // immutable, or owned by an object/frame

        // Find the declarator; skip function declarations and
        // definitions (`Random &stream()`).
        std::size_t j = i + 1;
        while (j < toks.size() &&
               (toks[j].text == "*" || toks[j].text == "&" ||
                toks[j].text == "const"))
            ++j;
        if (j >= toks.size() || toks[j].kind != TokKind::Identifier)
            continue;
        if (j + 1 < toks.size() && toks[j + 1].text == "(" &&
            f.enclosingFunction(i) < 0)
            continue; // function signature, not a variable

        report(out, f, toks[j].line, "shard-isolation",
               (is_shared ? "static " : "global ") + t.text + " '" +
                   toks[j].text +
                   "' is shared mutable simulation state -- parallel "
                   "shards must own their Random/EventQueue (see "
                   "ShardContext in sim/shard.hh)");
    }

    // (b) The driver and shard plumbing must not reach for
    // process-wide singletons at all.
    if (!isShardManaged(f.relPath()))
        return;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            (t.text != "global" && t.text != "instance"))
            continue;
        const std::string &sep = toks[i - 1].text;
        if ((sep != "." && sep != "->" && sep != "::") ||
            toks[i + 1].text != "(")
            continue;
        report(out, f, t.line, "shard-isolation",
               "singleton accessor '" + t.text +
                   "()' in shard-managed code -- shards may only "
                   "touch state handed to them via ShardContext");
    }
}

// --------------------------------------------------------- header-hygiene

void
checkHeaderHygiene(const SourceFile &f, const Project &,
                   std::vector<Diagnostic> &out)
{
    if (!f.isHeader())
        return;
    const auto &toks = f.tokens();

    bool has_pragma_once = false;
    std::string ifndef_name;
    bool has_guard = false;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "#" || !toks[i].inDirective)
            continue;
        if (toks[i + 1].text == "pragma" &&
            toks[i + 2].text == "once")
            has_pragma_once = true;
        if (toks[i + 1].text == "ifndef" && ifndef_name.empty() &&
            toks[i + 2].kind == TokKind::Identifier)
            ifndef_name = toks[i + 2].text;
        if (toks[i + 1].text == "define" && !ifndef_name.empty() &&
            toks[i + 2].text == ifndef_name)
            has_guard = true;
    }
    if (!has_pragma_once && !has_guard)
        report(out, f, 1, "header-hygiene",
               "header has neither '#pragma once' nor a matching "
               "#ifndef/#define include guard");

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].inDirective &&
            toks[i].kind == TokKind::Identifier &&
            toks[i].text == "using" &&
            toks[i + 1].text == "namespace")
            report(out, f, toks[i].line, "header-hygiene",
                   "'using namespace' in a header leaks into every "
                   "includer");
    }
}

} // namespace

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> rules = {
        {"bitmap-mediation",
         "PhysicalMemory accesses outside src/mem/ and the iHub must "
         "be preceded by an ownership-bitmap/range check",
         &checkBitmapMediation},
        {"stat-registration",
         "every Scalar/Average/Distribution must be registered with "
         "a StatGroup so the JSON export sees it",
         &checkStatRegistration},
        {"no-wallclock",
         "no std::chrono / time() / rand() / std::random_device in "
         "src/ -- time comes from EventQueue, randomness from "
         "sim/random.hh",
         &checkNoWallclock},
        {"trace-pairing",
         "HT_TRACE begin/end (and TraceSink::begin/end) must balance "
         "within each function",
         &checkTracePairing},
        {"no-raw-owning-new",
         "no raw owning 'new' outside SimObject factory "
         "constructors",
         &checkNoRawOwningNew},
        {"shard-isolation",
         "no global/static mutable Random or EventQueue, and no "
         "singleton accessors in shard-managed code -- parallel "
         "shards own their state",
         &checkShardIsolation},
        {"header-hygiene",
         "headers need an include guard and must not contain "
         "'using namespace'",
         &checkHeaderHygiene},
    };
    return rules;
}

} // namespace hypertee::htlint
