#!/usr/bin/env sh
# Suppression budget: the number of htlint allow()/allow-file() sites
# is ratcheted. Growing it requires a deliberate edit to
# tools/htlint/suppression-budget.txt in the same change, so new
# suppressions show up in review instead of accreting silently.
#
# Usage: check_suppression_budget.sh <htlint-binary> <repo-root>
set -eu

htlint=$1
root=$2
budget_file=$root/tools/htlint/suppression-budget.txt

budget=$(tr -cd '0-9' < "$budget_file")
actual=$(cd "$root" && "$htlint" --jobs=4 --list-suppressions \
             src bench tools tests |
         sed -n 's/^htlint: \([0-9][0-9]*\) suppression(s).*/\1/p')

if [ -z "$actual" ]; then
    echo "check_suppression_budget: could not parse htlint output" >&2
    exit 2
fi

if [ "$actual" -gt "$budget" ]; then
    echo "htlint suppressions grew: $actual site(s), budget is" \
         "$budget. Fix the finding instead, or justify the new" \
         "suppression and bump tools/htlint/suppression-budget.txt" \
         "in the same change." >&2
    exit 1
fi

if [ "$actual" -lt "$budget" ]; then
    echo "note: only $actual suppression site(s) left (budget" \
         "$budget) -- ratchet tools/htlint/suppression-budget.txt" \
         "down to lock in the progress."
fi

echo "suppression budget ok: $actual/$budget"
