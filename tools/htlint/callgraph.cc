#include "tools/htlint/callgraph.hh"

#include <algorithm>

namespace hypertee::htlint
{

void
CallGraph::build(const ProjectIndex &index)
{
    const auto &fns = index.functions();
    const auto &calls = index.calls();
    _callees.assign(calls.size(), {});
    _callers.assign(fns.size(), {});

    for (std::size_t c = 0; c < calls.size(); ++c) {
        const CallSite &call = calls[c];
        const std::vector<int> &named =
            index.functionsNamed(call.callee);
        if (named.empty())
            continue; // std:: / external call: no edge
        std::vector<int> &out = _callees[c];

        if (!call.receiver.empty() && call.qualified) {
            // `T::f()`: prefer methods of class T; when T defines no
            // f (T was a namespace, or f lives in a base) take every
            // definition — over-approximate rather than drop.
            for (int fn : named)
                if (fns[static_cast<std::size_t>(fn)].className ==
                    call.receiver)
                    out.push_back(fn);
            if (out.empty())
                out = named;
        } else if (!call.receiver.empty()) {
            // `x.f()` / `x->f()`: any method named f.
            for (int fn : named)
                if (!fns[static_cast<std::size_t>(fn)]
                         .className.empty())
                    out.push_back(fn);
            if (out.empty())
                out = named;
        } else {
            // Plain `f()`: free functions plus methods of the
            // caller's own class (implicit this).
            std::string caller_class;
            if (call.callerFn >= 0)
                caller_class =
                    fns[static_cast<std::size_t>(call.callerFn)]
                        .className;
            for (int fn : named) {
                const std::string &cls =
                    fns[static_cast<std::size_t>(fn)].className;
                if (cls.empty() ||
                    (!caller_class.empty() && cls == caller_class))
                    out.push_back(fn);
            }
            if (out.empty())
                out = named;
        }

        for (int fn : out)
            _callers[static_cast<std::size_t>(fn)].push_back(
                {static_cast<int>(c), call.callerFn});
    }
}

const std::vector<int> &
CallGraph::calleesOf(int call_site_idx) const
{
    static const std::vector<int> none;
    if (call_site_idx < 0 ||
        call_site_idx >= static_cast<int>(_callees.size()))
        return none;
    return _callees[static_cast<std::size_t>(call_site_idx)];
}

const std::vector<CallerEdge> &
CallGraph::callersOf(int fn_idx) const
{
    static const std::vector<CallerEdge> none;
    if (fn_idx < 0 || fn_idx >= static_cast<int>(_callers.size()))
        return none;
    return _callers[static_cast<std::size_t>(fn_idx)];
}

} // namespace hypertee::htlint
