#include "tools/htlint/index.hh"

#include <algorithm>
#include <set>

namespace hypertee::htlint
{

namespace
{

/** Tokens that can precede an identifier without making `id(` a
 *  declaration of `id` (so `id(` is a call expression). */
const std::set<std::string> &
callishPredecessors()
{
    static const std::set<std::string> words = {
        "return", "co_return", "co_yield", "case",  "else",
        "do",     "throw",     "and",      "or",    "not",
    };
    return words;
}

/** Control keywords that look like calls but are not. */
bool
isControlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "sizeof" || s == "alignof" ||
           s == "decltype" || s == "noexcept" || s == "static_assert";
}

std::string
trailingComponent(const std::string &comment, std::size_t from)
{
    std::size_t b = comment.find_first_not_of(" \t", from);
    if (b == std::string::npos)
        return "";
    std::size_t e = b;
    while (e < comment.size() &&
           (std::isalnum(static_cast<unsigned char>(comment[e])) ||
            comment[e] == '_'))
        ++e;
    return comment.substr(b, e - b);
}

} // namespace

void
ProjectIndex::build(const std::vector<std::unique_ptr<SourceFile>> &files)
{
    _functions.clear();
    _calls.clear();
    _guardedFields.clear();
    _functionsByName.clear();
    _callsByCallee.clear();
    _functionByBlock.clear();
    _files.clear();
    _files.reserve(files.size());
    for (const auto &f : files)
        _files.push_back(f.get());

    for (int i = 0; i < static_cast<int>(_files.size()); ++i)
        indexFunctions(*_files[static_cast<std::size_t>(i)], i);
    // Calls resolve caller functions, so functions index first.
    for (int i = 0; i < static_cast<int>(_files.size()); ++i) {
        indexCalls(*_files[static_cast<std::size_t>(i)], i);
        indexGuardedFields(*_files[static_cast<std::size_t>(i)], i);
    }
}

void
ProjectIndex::indexFunctions(const SourceFile &f, int file_idx)
{
    const auto &toks = f.tokens();
    const auto &blocks = f.blocks();
    for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
        const Block &blk = blocks[static_cast<std::size_t>(b)];
        if (blk.kind != Block::Kind::Function)
            continue;
        FunctionDef fn;
        fn.name = blk.name;
        fn.className = blk.className;
        fn.fileIdx = file_idx;
        fn.blockIdx = b;
        fn.open = blk.open;
        fn.close = blk.close;
        fn.line = blk.open < toks.size() ? toks[blk.open].line : 0;

        // Parameter names: the contents of the first statement-level
        // paren group of the introducing statement (the ctor
        // initializer list, trailing const/noexcept etc. come later).
        std::size_t lp = blk.open;
        for (std::size_t i = blk.stmtStart; i < blk.open; ++i) {
            const Token &t = toks[i];
            if (!t.inDirective && t.kind == TokKind::Punct &&
                t.text == "(" && t.parenDepth == 1) {
                lp = i;
                break;
            }
        }
        if (lp < blk.open) {
            std::size_t i = lp + 1;
            std::string last_ident;
            bool past_default = false;
            for (; i < blk.open; ++i) {
                const Token &t = toks[i];
                if (t.inDirective)
                    continue;
                bool top = t.parenDepth == 1;
                if (t.kind == TokKind::Punct && t.text == ")" &&
                    t.parenDepth == 1)
                    break;
                if (t.kind == TokKind::Punct && t.text == "," && top) {
                    fn.params.push_back(last_ident);
                    last_ident.clear();
                    past_default = false;
                    continue;
                }
                if (t.kind == TokKind::Punct && t.text == "=" && top)
                    past_default = true;
                if (!past_default && top &&
                    t.kind == TokKind::Identifier &&
                    // `foo(void)` / type keywords are never the name.
                    t.text != "void" && t.text != "const")
                    last_ident = t.text;
            }
            if (!last_ident.empty() || !fn.params.empty())
                fn.params.push_back(last_ident);
        }

        int id = static_cast<int>(_functions.size());
        _functionByBlock[{file_idx, b}] = id;
        _functionsByName[fn.name].push_back(id);
        _functions.push_back(std::move(fn));
    }
}

void
ProjectIndex::indexCalls(const SourceFile &f, int file_idx)
{
    const auto &toks = f.tokens();

    // A definition's own signature (`Ret Cls::name(args)`) looks like
    // a qualified call; collect every Function block's name token so
    // those are never indexed as call sites.
    std::set<std::size_t> sig_names;
    for (const Block &blk : f.blocks()) {
        if (blk.kind != Block::Kind::Function)
            continue;
        for (std::size_t i = blk.stmtStart; i < blk.open; ++i) {
            const Token &t = toks[i];
            if (!t.inDirective && t.kind == TokKind::Punct &&
                t.text == "(" && t.parenDepth == 1) {
                if (i > blk.stmtStart &&
                    toks[i - 1].kind == TokKind::Identifier)
                    sig_names.insert(i - 1);
                break;
            }
        }
    }

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (sig_names.count(i))
            continue;
        const Token &t = toks[i];
        if (t.inDirective || t.kind != TokKind::Identifier ||
            isControlKeyword(t.text))
            continue;
        if (toks[i + 1].text != "(" || toks[i + 1].inDirective)
            continue;
        CallSite call;
        if (i > 0) {
            const Token &prev = toks[i - 1];
            if (prev.text == "." || prev.text == "->") {
                if (i > 1 && toks[i - 2].kind == TokKind::Identifier)
                    call.receiver = toks[i - 2].text;
            } else if (prev.text == "::") {
                call.qualified = true;
                if (i > 1 && toks[i - 2].kind == TokKind::Identifier)
                    call.receiver = toks[i - 2].text;
            } else if (prev.kind == TokKind::Identifier &&
                       !callishPredecessors().count(prev.text)) {
                // `Type name(...)`: a declaration (variable with ctor
                // arguments, or a function signature), not a call.
                continue;
            } else if (prev.text == "~") {
                continue; // destructor mention
            }
        }
        call.callee = t.text;
        call.fileIdx = file_idx;
        call.tokenIdx = i;
        call.line = t.line;
        call.callerFn = functionAt(file_idx, i);

        // Argument token ranges: split the top-level commas between
        // this '(' and its matching ')'.
        int depth = toks[i + 1].parenDepth;
        int brace = toks[i + 1].braceDepth;
        std::size_t arg_begin = i + 2;
        std::size_t j = i + 2;
        for (; j < toks.size(); ++j) {
            const Token &a = toks[j];
            if (a.inDirective)
                continue;
            if (a.kind == TokKind::Punct && a.text == ")" &&
                a.parenDepth == depth)
                break;
            if (a.kind == TokKind::Punct && a.text == "," &&
                a.parenDepth == depth && a.braceDepth == brace) {
                call.args.emplace_back(arg_begin, j);
                arg_begin = j + 1;
            }
        }
        if (j > arg_begin || j < toks.size())
            if (j > i + 2) // at least one token between the parens
                call.args.emplace_back(arg_begin, j);

        _callsByCallee[call.callee].push_back(
            static_cast<int>(_calls.size()));
        _calls.push_back(std::move(call));
    }
}

void
ProjectIndex::indexGuardedFields(const SourceFile &f, int file_idx)
{
    for (const Comment &cm : f.comments()) {
        std::size_t at = cm.text.find("htlint:");
        if (at == std::string::npos)
            continue;
        std::size_t kw = cm.text.find("guarded-by", at + 7);
        if (kw == std::string::npos)
            continue;
        std::size_t lp = cm.text.find('(', kw);
        std::size_t rp =
            lp == std::string::npos ? std::string::npos
                                    : cm.text.find(')', lp);
        if (lp == std::string::npos || rp == std::string::npos)
            continue;
        std::string mutex_name = trailingComponent(cm.text, lp + 1);
        if (mutex_name.empty())
            continue;

        // A trailing comment annotates its own line; an own-line
        // comment annotates the next line.
        int target = cm.ownLine ? cm.endLine + 1 : cm.line;

        const auto &toks = f.tokens();
        std::string field;
        std::string class_name;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.line != target)
                continue;
            int blk = f.enclosingBlock(i);
            if (blk < 0 ||
                f.blocks()[static_cast<std::size_t>(blk)].kind !=
                    Block::Kind::Type)
                continue;
            if (t.kind == TokKind::Punct &&
                (t.text == ";" || t.text == "=" || t.text == "{")) {
                // Declarator name: last identifier before the
                // terminator.
                for (std::size_t k = i; k-- > 0;) {
                    if (toks[k].line != target)
                        break;
                    if (toks[k].kind == TokKind::Identifier) {
                        field = toks[k].text;
                        class_name =
                            f.blocks()[static_cast<std::size_t>(blk)]
                                .name;
                        break;
                    }
                }
                break;
            }
        }
        if (field.empty())
            continue;
        _guardedFields.push_back(
            {class_name, field, mutex_name, file_idx, target});
    }
}

const std::vector<int> &
ProjectIndex::functionsNamed(const std::string &name) const
{
    static const std::vector<int> none;
    auto it = _functionsByName.find(name);
    return it == _functionsByName.end() ? none : it->second;
}

const std::vector<int> &
ProjectIndex::callsNamed(const std::string &name) const
{
    static const std::vector<int> none;
    auto it = _callsByCallee.find(name);
    return it == _callsByCallee.end() ? none : it->second;
}

int
ProjectIndex::functionAt(int file_idx, std::size_t tok_idx) const
{
    if (file_idx < 0 ||
        file_idx >= static_cast<int>(_files.size()))
        return -1;
    const SourceFile &f = *_files[static_cast<std::size_t>(file_idx)];
    int blk = f.enclosingFunction(tok_idx);
    if (blk < 0)
        return -1;
    auto it = _functionByBlock.find({file_idx, blk});
    return it == _functionByBlock.end() ? -1 : it->second;
}

} // namespace hypertee::htlint
