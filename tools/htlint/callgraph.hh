/**
 * @file
 * Phase-2 call graph over the ProjectIndex.
 *
 * Edges resolve by name with receiver/qualifier hints: `x.f()` and
 * `x->f()` bind to every method named `f`; `T::f()` binds to methods
 * of class `T` (falling back to every `f` when `T` defines none, so a
 * namespace qualifier still resolves); a plain `f()` binds to free
 * functions named `f` plus methods of the caller's own class. The
 * result over-approximates the real graph — exactly what the
 * mediation-path and seed-flow rules want, since a spurious edge can
 * only make them more conservative, never let a violation escape.
 */

#ifndef HYPERTEE_TOOLS_HTLINT_CALLGRAPH_HH
#define HYPERTEE_TOOLS_HTLINT_CALLGRAPH_HH

#include <vector>

#include "tools/htlint/index.hh"

namespace hypertee::htlint
{

/** One incoming edge: call site @p callSiteIdx inside @p callerFn. */
struct CallerEdge
{
    int callSiteIdx = -1; ///< index into ProjectIndex::calls()
    int callerFn = -1;    ///< FunctionDef index; -1 = file scope
};

class CallGraph
{
  public:
    /** Resolve every call site of @p index into edges. */
    void build(const ProjectIndex &index);

    /** FunctionDef indices call site @p call_site_idx may target. */
    const std::vector<int> &calleesOf(int call_site_idx) const;

    /** Incoming edges of FunctionDef @p fn_idx. */
    const std::vector<CallerEdge> &callersOf(int fn_idx) const;

  private:
    /** Per call site: resolved callee FunctionDef indices. */
    std::vector<std::vector<int>> _callees;
    /** Per FunctionDef: incoming edges. */
    std::vector<std::vector<CallerEdge>> _callers;
};

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_CALLGRAPH_HH
