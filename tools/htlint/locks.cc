#include "tools/htlint/locks.hh"

#include <algorithm>
#include <cctype>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "tools/htlint/callgraph.hh"
#include "tools/htlint/index.hh"

namespace hypertee::htlint
{

namespace
{

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inSrcOrBench(const std::string &rel)
{
    return startsWith(rel, "src/") || startsWith(rel, "bench/");
}

std::string
toLower(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

// ----------------------------------------------------------- LockModel

/** One mutex acquisition and the token range it is held over. */
struct Acquisition
{
    std::size_t tokenIdx = 0; ///< token of the acquiring construct
    int line = 0;
    /** Unqualified mutex names (last member-access component). */
    std::vector<std::string> mutexes;
    std::size_t holdEnd = 0; ///< first token past the held range
    /** Several mutexes taken atomically (scoped_lock(a, b)): the
     *  acquisition itself is deadlock-avoiding, so no ordering edge
     *  exists *between* its own mutexes. */
    bool multi = false;
};

bool
isRaiiGuard(const std::string &s)
{
    return s == "lock_guard" || s == "scoped_lock" ||
           s == "unique_lock" || s == "shared_lock";
}

/** std::defer_lock / adopt_lock / try_to_lock tag arguments. */
bool
isLockTag(const std::string &s)
{
    return s == "defer_lock" || s == "adopt_lock" ||
           s == "try_to_lock";
}

/**
 * Per-function mutex acquisitions, shared by every rule in this
 * file. Indexed by FunctionDef index.
 */
class LockModel
{
  public:
    explicit LockModel(const Project &proj) : _proj(proj)
    {
        const auto &fns = proj.index().functions();
        _acq.resize(fns.size());
        for (std::size_t i = 0; i < fns.size(); ++i)
            collect(fns[i], _acq[i]);
    }

    const std::vector<Acquisition> &acquisitionsOf(int fn) const
    {
        return _acq[static_cast<std::size_t>(fn)];
    }

    /** Is @p mutex lexically held at token @p tok of function @p fn? */
    bool
    holds(int fn, std::size_t tok, const std::string &mutex) const
    {
        for (const Acquisition &a : acquisitionsOf(fn))
            if (a.tokenIdx < tok && tok < a.holdEnd &&
                std::find(a.mutexes.begin(), a.mutexes.end(),
                          mutex) != a.mutexes.end())
                return true;
        return false;
    }

    /** Is *any* mutex lexically held at token @p tok of @p fn? */
    bool
    holdsAny(int fn, std::size_t tok) const
    {
        for (const Acquisition &a : acquisitionsOf(fn))
            if (a.tokenIdx < tok && tok < a.holdEnd &&
                !a.mutexes.empty())
                return true;
        return false;
    }

  private:
    void
    collect(const FunctionDef &fn, std::vector<Acquisition> &out)
    {
        const SourceFile &f =
            *_proj.files()[static_cast<std::size_t>(fn.fileIdx)];
        const auto &toks = f.tokens();
        for (std::size_t k = fn.open + 1;
             k < fn.close && k < toks.size(); ++k) {
            const Token &t = toks[k];
            if (t.inDirective || t.kind != TokKind::Identifier)
                continue;
            if (isRaiiGuard(t.text))
                collectRaii(f, fn, k, out);
            else if (k + 3 < toks.size() &&
                     (toks[k + 1].text == "." ||
                      toks[k + 1].text == "->") &&
                     toks[k + 2].text == "lock" &&
                     toks[k + 3].text == "(")
                collectDirect(f, fn, k, out);
        }
    }

    /** `std::lock_guard<std::mutex> g(_mutex);` and friends. */
    void
    collectRaii(const SourceFile &f, const FunctionDef &fn,
                std::size_t k, std::vector<Acquisition> &out)
    {
        const auto &toks = f.tokens();
        std::size_t j = k + 1;
        if (j < toks.size() && toks[j].text == "<") {
            int depth = 1;
            for (++j; j < toks.size() && depth > 0; ++j) {
                if (toks[j].text == "<")
                    ++depth;
                else if (toks[j].text == ">")
                    --depth;
            }
        }
        // Variable name, then the parenthesized/braced mutex list.
        if (j >= toks.size() ||
            toks[j].kind != TokKind::Identifier)
            return;
        std::size_t open = j + 1;
        if (open >= toks.size() || (toks[open].text != "(" &&
                                    toks[open].text != "{"))
            return;
        const std::string close = toks[open].text == "(" ? ")" : "}";
        const std::string opener = toks[open].text;

        Acquisition acq;
        acq.tokenIdx = k;
        acq.line = toks[k].line;
        int b = f.enclosingBlock(k);
        acq.holdEnd =
            b < 0 ? toks.size()
                  : f.blocks()[static_cast<std::size_t>(b)].close;

        // Split the arguments on top-level commas; the mutex name of
        // each argument is its last identifier (`other._mutex` ->
        // `_mutex`).
        int depth = 0;
        std::string last;
        bool deferred = false;
        auto flush = [&]() {
            if (last.empty())
                return;
            if (isLockTag(last))
                deferred |= last == "defer_lock";
            else
                acq.mutexes.push_back(last);
            last.clear();
        };
        for (std::size_t m = open; m < toks.size(); ++m) {
            const std::string &s = toks[m].text;
            if (s == opener || s == "(" || s == "{" || s == "[") {
                ++depth;
            } else if (s == close || s == ")" || s == "}" ||
                       s == "]") {
                if (--depth == 0) {
                    flush();
                    break;
                }
            } else if (s == "," && depth == 1) {
                flush();
            } else if (toks[m].kind == TokKind::Identifier) {
                last = s;
            }
        }
        if (deferred || acq.mutexes.empty())
            return; // std::defer_lock: nothing held yet
        acq.multi = acq.mutexes.size() > 1;
        (void)fn;
        out.push_back(std::move(acq));
    }

    /** `_mutex.lock()` ... `_mutex.unlock()` (or to function end). */
    void
    collectDirect(const SourceFile &f, const FunctionDef &fn,
                  std::size_t k, std::vector<Acquisition> &out)
    {
        const auto &toks = f.tokens();
        Acquisition acq;
        acq.tokenIdx = k;
        acq.line = toks[k].line;
        acq.mutexes.push_back(toks[k].text);
        acq.holdEnd = fn.close;
        for (std::size_t m = k + 4;
             m + 3 < toks.size() && m < fn.close; ++m) {
            if (toks[m].kind == TokKind::Identifier &&
                toks[m].text == toks[k].text &&
                (toks[m + 1].text == "." ||
                 toks[m + 1].text == "->") &&
                toks[m + 2].text == "unlock" &&
                toks[m + 3].text == "(") {
                acq.holdEnd = m;
                break;
            }
        }
        out.push_back(std::move(acq));
    }

    const Project &_proj;
    std::vector<std::vector<Acquisition>> _acq;
};

std::string
fnLabel(const FunctionDef &fn)
{
    return fn.className.empty() ? fn.name
                                : fn.className + "::" + fn.name;
}

/** Keywords that look like a declaration's type but are not. */
bool
isStatementKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "return",   "else",     "do",        "break",
        "continue", "case",     "goto",      "new",
        "delete",   "throw",    "co_return", "co_await",
        "co_yield", "sizeof",   "typedef",   "using",
        "namespace","struct",   "class",     "enum",
        "public",   "private",  "protected", "virtual",
        "override", "final",    "inline",    "static",
        "extern",   "mutable",  "operator",  "template",
        "typename", "auto",     "friend",    "explicit",
        "typeid",   "decltype", "alignof",   "requires",
        "concept",  "if",       "while",     "for",
        "switch",   "catch",
    };
    return kw.count(s) != 0;
}

/**
 * Declared types of variables/members/parameters, recovered from
 * adjacent `Type name` (and `Tmpl<...> name`) token pairs
 * project-wide. Used to *prune* impossible call-graph bindings:
 * `_scalars.end()` with `std::map<...> _scalars` declared cannot
 * target `TraceSink::end`. Unknown receivers stay unpruned, so this
 * only removes edges the declarations provably exclude -- the graph
 * remains an over-approximation.
 */
class ReceiverTypes
{
  public:
    explicit ReceiverTypes(const Project &proj) : _proj(proj)
    {
        for (const auto &fptr : proj.files())
            scan(*fptr);
    }

    /** May call site @p cs really target @p callee? */
    bool
    allows(const CallSite &cs, const FunctionDef &callee) const
    {
        if (callee.className.empty())
            return true; // free function: no receiver to contradict
        if (cs.receiver.empty() || cs.receiver == "this" ||
            cs.qualified)
            return true;
        auto it = _types.find(cs.receiver);
        if (it == _types.end())
            return true; // receiver of unknown type: stay sound
        for (const std::string &t : it->second)
            if (t == callee.className ||
                _proj.derivesFrom(t, callee.className))
                return true;
        return false;
    }

  private:
    void
    scan(const SourceFile &f)
    {
        const auto &toks = f.tokens();
        for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
            const Token &v = toks[i];
            if (v.inDirective || v.kind != TokKind::Identifier)
                continue;
            const std::string &next = toks[i + 1].text;
            if (next != ";" && next != "=" && next != "{" &&
                next != "," && next != ")" && next != "[")
                continue;
            // Walk back over declarator decorations to the type.
            std::size_t k = i;
            while (k-- > 0 && (toks[k].text == "*" ||
                               toks[k].text == "&" ||
                               toks[k].text == "const"))
                ;
            if (k >= toks.size())
                continue;
            if (toks[k].kind == TokKind::Identifier) {
                if (!isStatementKeyword(toks[k].text))
                    _types[v.text].insert(toks[k].text);
            } else if (toks[k].text == ">") {
                // Tmpl<Arg, ...> name: both the template head and
                // its type arguments are plausible receiver types
                // (unique_ptr<TraceSink> p; p->record()).
                int depth = 1;
                while (k-- > 0 && depth > 0) {
                    if (toks[k].text == ">")
                        ++depth;
                    else if (toks[k].text == "<")
                        --depth;
                    else if (toks[k].kind == TokKind::Identifier &&
                             !isStatementKeyword(toks[k].text))
                        _types[v.text].insert(toks[k].text);
                }
                if (k < toks.size() &&
                    toks[k].kind == TokKind::Identifier &&
                    !isStatementKeyword(toks[k].text))
                    _types[v.text].insert(toks[k].text);
            }
        }
    }

    const Project &_proj;
    std::map<std::string, std::set<std::string>> _types;
};

// ------------------------------------------------------------- lockset

/**
 * Must-hold lockset propagation: a guarded field access is legal when
 * the annotated mutex is lexically held at the access, or when every
 * caller (recursively) holds it at the call site -- which *proves*
 * the `*Locked`-helper and private-callee patterns the old guarded-by
 * rule merely exempted by name.
 */
class LocksetAnalysis
{
  public:
    LocksetAnalysis(const Project &proj, const LockModel &model,
                    const ReceiverTypes &types)
        : _proj(proj), _model(model), _types(types)
    {
    }

    /**
     * Do all callers of @p fn hold @p mutex at their call sites?
     * False for functions without resolved callers (nothing proves
     * the lockset) and for recursion cycles (conservative). On
     * failure, the first offending call site is appended to
     * @p blame.
     */
    bool
    provenByCallers(int fn, const std::string &mutex,
                    std::vector<FlowStep> &blame)
    {
        auto key = std::make_pair(fn, mutex);
        auto it = _memo.find(key);
        if (it != _memo.end())
            return it->second;
        // In-progress recursion resolves to "not proven".
        _memo[key] = false;

        const ProjectIndex &idx = _proj.index();
        const FunctionDef &def =
            idx.functions()[static_cast<std::size_t>(fn)];
        const auto &callers = _proj.callGraph().callersOf(fn);
        bool ok = true;
        std::size_t considered = 0;
        for (const CallerEdge &e : callers) {
            const CallSite &cs =
                idx.calls()[static_cast<std::size_t>(e.callSiteIdx)];
            if (!_types.allows(cs, def))
                continue; // receiver type excludes this binding
            ++considered;
            if (e.callerFn < 0) {
                ok = false; // file-scope call: no lock context
                continue;
            }
            if (_model.holds(e.callerFn, cs.tokenIdx, mutex))
                continue;
            std::vector<FlowStep> inner;
            if (provenByCallers(e.callerFn, mutex, inner))
                continue;
            ok = false;
            if (blame.size() < 3) {
                const FunctionDef &g =
                    idx.functions()[static_cast<std::size_t>(
                        e.callerFn)];
                blame.push_back(
                    {_proj.files()[static_cast<std::size_t>(
                                       cs.fileIdx)]
                         ->relPath(),
                     cs.line,
                     "called from '" + fnLabel(g) +
                         "' without holding " + mutex});
            }
        }
        // No (plausible) caller at all: nothing proves the lockset.
        ok = ok && considered > 0;
        _memo[key] = ok;
        return ok;
    }

  private:
    const Project &_proj;
    const LockModel &_model;
    const ReceiverTypes &_types;
    std::map<std::pair<int, std::string>, bool> _memo;
};

} // namespace

void
checkLockset(const Project &proj, std::vector<Diagnostic> &out)
{
    const ProjectIndex &idx = proj.index();
    LockModel model(proj);
    ReceiverTypes types(proj);
    LocksetAnalysis locksets(proj, model, types);
    const auto &files = proj.files();

    for (const GuardedField &gf : idx.guardedFields()) {
        if (gf.className.empty())
            continue;
        for (std::size_t fi = 0; fi < files.size(); ++fi) {
            const SourceFile &f = *files[fi];
            const auto &toks = f.tokens();
            for (std::size_t i = 0; i < toks.size(); ++i) {
                const Token &t = toks[i];
                if (t.inDirective ||
                    t.kind != TokKind::Identifier ||
                    t.text != gf.field)
                    continue;
                int fb = f.enclosingFunction(i);
                if (fb < 0)
                    continue; // declaration / member-init list
                const Block &blk =
                    f.blocks()[static_cast<std::size_t>(fb)];
                if (blk.className != gf.className)
                    continue; // another class's same-named member
                if (blk.name == gf.className ||
                    blk.name == "~" + gf.className)
                    continue; // ctor/dtor: no concurrent access yet
                int fn = idx.functionAt(static_cast<int>(fi), i);
                if (fn < 0)
                    continue;
                if (model.holds(fn, i, gf.mutexName))
                    continue;
                std::vector<FlowStep> blame;
                if (locksets.provenByCallers(fn, gf.mutexName,
                                             blame))
                    continue;
                Diagnostic d;
                d.file = f.relPath();
                d.line = t.line;
                d.rule = "lockset";
                d.message =
                    gf.className + "::" + gf.field +
                    " is guarded-by(" + gf.mutexName + ") but '" +
                    blk.name + "' accesses it without holding the "
                    "lock" +
                    (blame.empty()
                         ? " and no caller proves the lockset"
                         : " and at least one caller does not hold "
                           "it either");
                d.flow.push_back({f.relPath(), t.line,
                                  "unprotected access to " +
                                      gf.className + "::" +
                                      gf.field});
                for (FlowStep &s : blame)
                    d.flow.push_back(std::move(s));
                out.push_back(std::move(d));
            }
        }
    }
}

// ----------------------------------------------------------- lock-order

namespace
{

/** One observed "acquired `to` while holding `from`" edge. */
struct OrderEdge
{
    std::string file;
    int line = 0;
    std::string note;
};

/** A mutex name qualified by the owning class when it looks like a
 *  member (leading underscore), so ShardStats::_mutex and
 *  TraceSink::_mutex stay distinct lock-order nodes. */
std::string
qualifyMutex(const FunctionDef &fn, const std::string &mutex)
{
    if (!fn.className.empty() && !mutex.empty() && mutex[0] == '_')
        return fn.className + "::" + mutex;
    return mutex;
}

/**
 * The set of mutexes a function may acquire, directly or through any
 * call it makes (over-approximate; memoized DFS over the call
 * graph). Direct-recursion self edges are skipped: `x.merge(...)`
 * inside ShardStats::merge over-approximately binds back to itself,
 * which would otherwise fabricate a self-deadlock.
 */
class AcquireClosure
{
  public:
    AcquireClosure(const Project &proj, const LockModel &model,
                   const ReceiverTypes &types)
        : _proj(proj), _model(model), _types(types)
    {
        const auto &calls = proj.index().calls();
        for (std::size_t c = 0; c < calls.size(); ++c)
            if (calls[c].callerFn >= 0)
                _sitesOf[calls[c].callerFn].push_back(
                    static_cast<int>(c));
    }

    /** Call sites inside FunctionDef @p fn. */
    const std::vector<int> &
    sitesOf(int fn) const
    {
        static const std::vector<int> none;
        auto it = _sitesOf.find(fn);
        return it == _sitesOf.end() ? none : it->second;
    }

    /** Qualified mutex names @p fn may acquire, with one
     *  representative acquisition site each. */
    const std::map<std::string, FlowStep> &
    of(int fn)
    {
        auto it = _memo.find(fn);
        if (it != _memo.end())
            return it->second;
        // Break cycles: a function currently being resolved
        // contributes nothing extra to its own closure.
        _memo[fn];

        const ProjectIndex &idx = _proj.index();
        const FunctionDef &def =
            idx.functions()[static_cast<std::size_t>(fn)];
        const std::string &rel =
            _proj.files()[static_cast<std::size_t>(def.fileIdx)]
                ->relPath();
        Closure closure;
        for (const Acquisition &a : _model.acquisitionsOf(fn))
            for (const std::string &m : a.mutexes)
                closure.emplace(
                    qualifyMutex(def, m),
                    FlowStep{rel, a.line,
                             "'" + fnLabel(def) + "' acquires " +
                                 qualifyMutex(def, m)});
        for (int c : sitesOf(fn)) {
            const CallSite &cs =
                idx.calls()[static_cast<std::size_t>(c)];
            for (int callee : _proj.callGraph().calleesOf(c)) {
                if (callee == fn)
                    continue; // direct recursion
                if (!_types.allows(
                        cs, idx.functions()[static_cast<
                                std::size_t>(callee)]))
                    continue;
                for (const auto &[m, site] : of(callee))
                    closure.emplace(m, site);
            }
        }
        // Re-find: recursive of() calls may have rehashed the map.
        return _memo[fn] = std::move(closure);
    }

  private:
    using Closure = std::map<std::string, FlowStep>;
    const Project &_proj;
    const LockModel &_model;
    const ReceiverTypes &_types;
    std::map<int, std::vector<int>> _sitesOf;
    std::map<int, Closure> _memo;
};

} // namespace

void
checkLockOrder(const Project &proj, std::vector<Diagnostic> &out)
{
    const ProjectIndex &idx = proj.index();
    LockModel model(proj);
    ReceiverTypes types(proj);
    AcquireClosure closure(proj, model, types);
    const auto &files = proj.files();
    const auto &fns = idx.functions();

    // from -> to -> first acquisition site that witnesses the edge.
    std::map<std::string, std::map<std::string, OrderEdge>> graph;
    auto addEdge = [&](const std::string &from, const std::string &to,
                       OrderEdge edge) {
        if (from == to)
            return;
        graph[from].emplace(to, std::move(edge));
        graph.try_emplace(to); // every node has an adjacency row
    };

    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
        const FunctionDef &fn = fns[fi];
        const std::string &rel =
            files[static_cast<std::size_t>(fn.fileIdx)]->relPath();
        if (!inSrcOrBench(rel))
            continue;
        const auto &acqs = model.acquisitionsOf(static_cast<int>(fi));
        for (std::size_t ai = 0; ai < acqs.size(); ++ai) {
            const Acquisition &a = acqs[ai];
            // Nested acquisition inside the same function.
            for (std::size_t bi = 0; bi < acqs.size(); ++bi) {
                const Acquisition &b = acqs[bi];
                if (bi == ai || b.tokenIdx <= a.tokenIdx ||
                    b.tokenIdx >= a.holdEnd)
                    continue;
                for (const std::string &ma : a.mutexes)
                    for (const std::string &mb : b.mutexes) {
                        std::string note = "'";
                        note += fnLabel(fn);
                        note += "' acquires ";
                        note += qualifyMutex(fn, mb);
                        note += " while holding ";
                        note += qualifyMutex(fn, ma);
                        addEdge(qualifyMutex(fn, ma),
                                qualifyMutex(fn, mb),
                                {rel, b.line, std::move(note)});
                    }
            }
            // Acquisitions reached transitively through calls made
            // while the lock is held.
            for (int c : closure.sitesOf(static_cast<int>(fi))) {
                const CallSite &cs =
                    idx.calls()[static_cast<std::size_t>(c)];
                if (cs.tokenIdx <= a.tokenIdx ||
                    cs.tokenIdx >= a.holdEnd)
                    continue;
                for (int callee :
                     proj.callGraph().calleesOf(c)) {
                    if (callee == static_cast<int>(fi))
                        continue; // direct recursion
                    if (!types.allows(
                            cs, fns[static_cast<std::size_t>(
                                    callee)]))
                        continue;
                    for (const auto &[mb, site] :
                         closure.of(callee)) {
                        for (const std::string &ma : a.mutexes) {
                            std::string note = "'";
                            note += fnLabel(fn);
                            note += "' holds ";
                            note += qualifyMutex(fn, ma);
                            note += " across a call to '";
                            note += cs.callee;
                            note += "', which acquires ";
                            note += mb;
                            addEdge(qualifyMutex(fn, ma), mb,
                                    {rel, cs.line,
                                     std::move(note)});
                        }
                    }
                }
            }
        }
    }

    // Report each elementary cycle once (canonicalized rotation).
    std::set<std::string> reported;
    std::vector<std::string> stack;
    std::set<std::string> onStack, done;
    std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            stack.push_back(node);
            onStack.insert(node);
            for (const auto &[next, edge] : graph[node]) {
                if (onStack.count(next)) {
                    // Cycle: the stack suffix from `next` to `node`.
                    auto begin = std::find(stack.begin(),
                                           stack.end(), next);
                    std::vector<std::string> cycle(begin,
                                                   stack.end());
                    auto smallest = std::min_element(cycle.begin(),
                                                     cycle.end());
                    std::rotate(cycle.begin(), smallest,
                                cycle.end());
                    std::string key;
                    for (const std::string &n : cycle)
                        key += n + ";";
                    if (!reported.insert(key).second)
                        continue;

                    Diagnostic d;
                    d.rule = "lock-order";
                    std::string order;
                    for (std::size_t i = 0; i < cycle.size(); ++i) {
                        const std::string &from = cycle[i];
                        const std::string &to =
                            cycle[(i + 1) % cycle.size()];
                        const OrderEdge &e = graph[from].at(to);
                        if (i == 0) {
                            d.file = e.file;
                            d.line = e.line;
                        }
                        order += from + " -> ";
                        d.flow.push_back({e.file, e.line, e.note});
                    }
                    order += cycle.front();
                    d.message =
                        "lock-order cycle " + order +
                        ": threads acquiring these mutexes in "
                        "different orders can deadlock";
                    out.push_back(std::move(d));
                    continue;
                }
                if (!done.count(next))
                    dfs(next);
            }
            onStack.erase(node);
            stack.pop_back();
            done.insert(node);
        };
    for (const auto &[node, adj] : graph) {
        (void)adj;
        if (!done.count(node))
            dfs(node);
    }
}

// -------------------------------------------------------- atomic-sanity

namespace
{

/** Names suggesting an atomic is a readiness/handoff flag, where a
 *  relaxed store would publish data without a release fence. */
bool
isFlagLike(const std::string &name)
{
    const std::string l = toLower(name);
    for (const char *n : {"flag", "ready", "done", "publish", "stop",
                          "init", "running", "shutdown", "quit",
                          "enabled"})
        if (l.find(n) != std::string::npos)
            return true;
    return false;
}

/** Project-wide names of std::atomic<...> variables/fields. */
std::set<std::string>
atomicNames(const Project &proj)
{
    std::set<std::string> names;
    for (const auto &fptr : proj.files()) {
        const auto &toks = fptr->tokens();
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (toks[i].inDirective ||
                toks[i].kind != TokKind::Identifier ||
                (toks[i].text != "atomic" &&
                 toks[i].text != "atomic_flag"))
                continue;
            std::size_t j = i + 1;
            if (toks[j].text == "<") {
                int depth = 1;
                for (++j; j < toks.size() && depth > 0; ++j) {
                    if (toks[j].text == "<")
                        ++depth;
                    else if (toks[j].text == ">")
                        --depth;
                }
            }
            if (j < toks.size() &&
                toks[j].kind == TokKind::Identifier)
                names.insert(toks[j].text);
        }
    }
    return names;
}

void
reportSplitRmw(std::vector<Diagnostic> &out, const SourceFile &f,
               const Token &t, const char *what)
{
    out.push_back(
        {f.relPath(), t.line, "atomic-sanity",
         std::string("split load/store read-modify-write on atomic "
                     "'") +
             t.text + "' (the " + what +
             " reads it again) -- racing threads lose updates "
             "between the load and the store; use fetch_add/"
             "exchange/compare_exchange",
         {}});
}

/** Does the token range [begin, end) mention identifier @p name? */
bool
rangeMentions(const std::vector<Token> &toks, std::size_t begin,
              std::size_t end, const std::string &name)
{
    for (std::size_t k = begin; k < end && k < toks.size(); ++k)
        if (toks[k].kind == TokKind::Identifier &&
            toks[k].text == name)
            return true;
    return false;
}

/** Token index one past the closing paren opened at @p open. */
std::size_t
closeOfParen(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t k = open; k < toks.size(); ++k) {
        if (toks[k].text == "(")
            ++depth;
        else if (toks[k].text == ")" && --depth == 0)
            return k + 1;
    }
    return toks.size();
}

} // namespace

void
checkAtomicSanity(const Project &proj, std::vector<Diagnostic> &out)
{
    const ProjectIndex &idx = proj.index();
    LockModel model(proj);
    const std::set<std::string> atomics = atomicNames(proj);
    if (atomics.empty())
        return;
    const auto &files = proj.files();

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile &f = *files[fi];
        if (!inSrcOrBench(f.relPath()))
            continue;
        const auto &toks = f.tokens();
        // Per (function, var): a compare_exchange in the same
        // function legitimizes load/CAS retry shapes.
        std::set<std::pair<int, std::string>> hasCas;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i)
            if (toks[i].kind == TokKind::Identifier &&
                atomics.count(toks[i].text) &&
                (toks[i + 1].text == "." ||
                 toks[i + 1].text == "->") &&
                startsWith(toks[i + 2].text, "compare_exchange"))
                hasCas.emplace(f.enclosingFunction(i),
                               toks[i].text);

        std::set<std::pair<int, std::string>> dclReported;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier ||
                !atomics.count(t.text))
                continue;
            int fb = f.enclosingFunction(i);
            if (fb < 0)
                continue;
            bool casHere = hasCas.count({fb, t.text}) != 0;

            // (a) Split read-modify-write: `a = <expr using a>` or
            // `a.store(<expr using a>)` loses updates racing between
            // the load and the store.
            if (i + 2 < toks.size() && toks[i + 1].text == "=" &&
                toks[i + 2].text != "=" &&
                (i == 0 || (toks[i - 1].text != "." &&
                            toks[i - 1].text != "->" &&
                            toks[i - 1].text != "=" &&
                            toks[i - 1].text != "!" &&
                            toks[i - 1].text != "<" &&
                            toks[i - 1].text != ">"))) {
                std::size_t semi = i + 2;
                while (semi < toks.size() && toks[semi].text != ";")
                    ++semi;
                if (!casHere &&
                    rangeMentions(toks, i + 2, semi, t.text))
                    reportSplitRmw(out, f, t, "assignment");
            }
            if (i + 3 < toks.size() &&
                (toks[i + 1].text == "." ||
                 toks[i + 1].text == "->") &&
                toks[i + 2].text == "store" &&
                toks[i + 3].text == "(") {
                std::size_t end = closeOfParen(toks, i + 3);
                if (!casHere &&
                    rangeMentions(toks, i + 4, end - 1, t.text))
                    reportSplitRmw(out, f, t, "store");
                // (b) Relaxed store to a readiness flag publishes
                // the data it guards without a release fence.
                if (isFlagLike(t.text) &&
                    rangeMentions(toks, i + 4, end - 1,
                                  "memory_order_relaxed"))
                    out.push_back(
                        {f.relPath(), t.line, "atomic-sanity",
                         "memory_order_relaxed store to "
                         "flag-like atomic '" + t.text +
                             "' -- a readiness flag handoff needs "
                             "release/acquire (or seq_cst) so the "
                             "data it publishes is visible",
                         {}});
            }

            // (c) Double-checked locking: a relaxed load decides to
            // skip the lock, but without acquire the initialized
            // data may not be visible yet.
            if (i + 3 < toks.size() &&
                (toks[i + 1].text == "." ||
                 toks[i + 1].text == "->") &&
                toks[i + 2].text == "load" &&
                toks[i + 3].text == "(") {
                std::size_t end = closeOfParen(toks, i + 3);
                if (!rangeMentions(toks, i + 4, end - 1,
                                   "memory_order_relaxed"))
                    continue;
                // Inside an if-condition?
                bool inIf = false;
                for (std::size_t back = i; back-- > 0 &&
                                           back + 4 > i;) {
                    const std::string &p = toks[back].text;
                    if (p == "!" || p == "(")
                        continue;
                    inIf = p == "if";
                    break;
                }
                if (!inIf || casHere)
                    continue;
                int fn = idx.functionAt(static_cast<int>(fi), i);
                if (fn < 0)
                    continue;
                // A later lock acquisition followed by another use
                // of the same atomic completes the DCL shape.
                bool dcl = false;
                for (const Acquisition &a :
                     model.acquisitionsOf(fn))
                    if (a.tokenIdx > i &&
                        rangeMentions(toks, a.tokenIdx, a.holdEnd,
                                      t.text))
                        dcl = true;
                if (dcl &&
                    dclReported.emplace(fb, t.text).second)
                    out.push_back(
                        {f.relPath(), t.line, "atomic-sanity",
                         "double-checked locking on '" + t.text +
                             "' uses memory_order_relaxed for the "
                             "racing load -- the fast path needs "
                             "memory_order_acquire (paired with a "
                             "release store) to see the "
                             "initialized data",
                         {}});
            }
        }
    }
}

// -------------------------------------------------------- shard-escape

namespace
{

/** Fundamental-type spellings a declaration may start with. */
bool
isTypeish(const Token &t)
{
    return t.kind == TokKind::Identifier;
}

bool
isDeclKeyword(const std::string &s)
{
    return s == "using" || s == "typedef" || s == "namespace" ||
           s == "class" || s == "struct" || s == "enum" ||
           s == "template" || s == "return" || s == "friend" ||
           s == "operator" || s == "new" || s == "delete" ||
           s == "co_return" || s == "throw" || s == "case" ||
           s == "goto" || s == "sizeof" || s == "alignof" ||
           s == "decltype" || s == "else" || s == "do";
}

/** Types that are themselves safe to share across shards. */
bool
isSyncType(const std::string &s)
{
    return s == "atomic" || s == "atomic_flag" || s == "mutex" ||
           s == "shared_mutex" || s == "recursive_mutex" ||
           s == "timed_mutex" || s == "once_flag" ||
           s == "condition_variable" || s == "atomic_bool" ||
           s == "atomic_int" || s == "atomic_uint64_t";
}

/** One shared mutable variable the rule tracks. */
struct SharedVar
{
    std::string file;
    int line = 0;
    bool functionLocalStatic = false;
};

/**
 * Class names that own a std::mutex (or other sync member): their
 * instances serialize access internally, so sharing one with shard
 * code is the *intended* pattern (TraceSink is the archetype).
 */
std::set<std::string>
mutexOwningTypes(const Project &proj)
{
    std::set<std::string> types;
    for (const auto &fptr : proj.files()) {
        const SourceFile &f = *fptr;
        const auto &toks = f.tokens();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier ||
                (t.text != "mutex" && t.text != "shared_mutex" &&
                 t.text != "recursive_mutex"))
                continue;
            int b = f.enclosingBlock(i);
            while (b >= 0) {
                const Block &blk =
                    f.blocks()[static_cast<std::size_t>(b)];
                if (blk.kind == Block::Kind::Type) {
                    if (!blk.name.empty())
                        types.insert(blk.name);
                    break;
                }
                if (blk.kind == Block::Kind::Function)
                    break; // local variable, not a member
                b = blk.parent;
            }
        }
    }
    return types;
}

} // namespace

void
checkShardEscape(const Project &proj, std::vector<Diagnostic> &out)
{
    const ProjectIndex &idx = proj.index();
    const CallGraph &cg = proj.callGraph();
    LockModel model(proj);
    ReceiverTypes types(proj);
    const auto &files = proj.files();
    const auto &fns = idx.functions();
    const std::set<std::string> safeTypes = mutexOwningTypes(proj);

    // ---- roots: functions executed inside a shard (take a
    // ShardContext) or whose lambdas the shard driver runs (call
    // runShards/shardMap/runShardedBench; lambdas are attributed to
    // the enclosing function).
    std::map<int, std::vector<int>> sitesOf;
    const auto &calls = idx.calls();
    for (std::size_t c = 0; c < calls.size(); ++c)
        if (calls[c].callerFn >= 0)
            sitesOf[calls[c].callerFn].push_back(
                static_cast<int>(c));

    std::deque<int> todo;
    std::map<int, int> parent; // reached fn -> fn it was reached from
    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
        const FunctionDef &fn = fns[fi];
        const SourceFile &f =
            *files[static_cast<std::size_t>(fn.fileIdx)];
        const Block &blk =
            f.blocks()[static_cast<std::size_t>(fn.blockIdx)];
        bool root = rangeMentions(f.tokens(), blk.stmtStart,
                                  blk.open, "ShardContext");
        if (!root) {
            auto it = sitesOf.find(static_cast<int>(fi));
            if (it != sitesOf.end())
                for (int c : it->second) {
                    const std::string &callee =
                        calls[static_cast<std::size_t>(c)].callee;
                    if (callee == "runShards" ||
                        callee == "shardMap" ||
                        callee == "runShardedBench")
                        root = true;
                }
        }
        if (root && parent.emplace(static_cast<int>(fi), -1).second)
            todo.push_back(static_cast<int>(fi));
    }

    // ---- forward reachability through the call graph.
    while (!todo.empty()) {
        int fn = todo.front();
        todo.pop_front();
        auto it = sitesOf.find(fn);
        if (it == sitesOf.end())
            continue;
        for (int c : it->second)
            for (int callee : cg.calleesOf(c)) {
                if (!types.allows(
                        calls[static_cast<std::size_t>(c)],
                        fns[static_cast<std::size_t>(callee)]))
                    continue;
                if (parent.emplace(callee, fn).second)
                    todo.push_back(callee);
            }
    }

    // ---- shared mutable state: namespace-scope non-const
    // variables in src|bench (excluding sync types, mutex-owning
    // classes, thread_local -- per-shard by construction -- and
    // type aliases).
    std::map<std::string, SharedVar> shared;
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile &f = *files[fi];
        if (!inSrcOrBench(f.relPath()))
            continue;
        const auto &toks = f.tokens();
        for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier ||
                t.parenDepth > 0)
                continue;
            const std::string &next = toks[i + 1].text;
            if (next != "=" && next != ";" && next != "{" &&
                next != "[")
                continue;
            if (!isTypeish(toks[i - 1]) ||
                isDeclKeyword(toks[i - 1].text) ||
                isSyncType(toks[i - 1].text) ||
                safeTypes.count(toks[i - 1].text))
                continue;
            if (f.enclosingFunction(i) >= 0)
                continue; // locals are frame-owned
            int b = f.enclosingBlock(i);
            if (b >= 0 &&
                f.blocks()[static_cast<std::size_t>(b)].kind !=
                    Block::Kind::Namespace)
                continue; // members, enumerators, initializers
            // Qualifiers: const/constexpr are immutable,
            // thread_local is shard-owned, template args and
            // alias/typedef heads are not variables.
            bool mutable_var = true;
            for (std::size_t k = i; k-- > 0;) {
                const std::string &p = toks[k].text;
                if (p == "const" || p == "constexpr" ||
                    p == "thread_local" || p == "using" ||
                    p == "typedef" || p == "extern") {
                    mutable_var = p == "extern";
                    break;
                }
                if (p == ";" || p == "}" || p == "{" || p == ":" ||
                    k + 8 < i)
                    break;
            }
            if (!mutable_var)
                continue;
            shared.emplace(t.text, SharedVar{f.relPath(), t.line,
                                             false});
        }
    }

    // ---- flag uses of shared state in shard-reachable functions,
    // plus function-local statics declared there.
    for (const auto &[fnIdx, from] : parent) {
        (void)from;
        const FunctionDef &fn =
            fns[static_cast<std::size_t>(fnIdx)];
        const SourceFile &f =
            *files[static_cast<std::size_t>(fn.fileIdx)];
        if (!inSrcOrBench(f.relPath()))
            continue;
        const auto &toks = f.tokens();
        auto chain = [&](int leaf) {
            std::vector<FlowStep> steps;
            for (int cur = leaf; cur >= 0 && steps.size() < 4;
                 cur = parent.at(cur)) {
                const FunctionDef &g =
                    fns[static_cast<std::size_t>(cur)];
                steps.push_back(
                    {files[static_cast<std::size_t>(g.fileIdx)]
                         ->relPath(),
                     g.line,
                     "'" + fnLabel(g) + "' runs in shard context"});
            }
            std::reverse(steps.begin(), steps.end());
            return steps;
        };

        for (std::size_t i = fn.open + 1;
             i < fn.close && i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.inDirective || t.kind != TokKind::Identifier)
                continue;

            // Function-local static mutable state.
            if (t.text == "static") {
                std::size_t j = i + 1;
                bool safe = false;
                while (j < toks.size() &&
                       (toks[j].text == "const" ||
                        toks[j].text == "constexpr" ||
                        toks[j].text == "thread_local")) {
                    safe = true;
                    ++j;
                }
                if (safe || j + 1 >= toks.size() ||
                    toks[j].kind != TokKind::Identifier)
                    continue;
                if (isSyncType(toks[j].text) ||
                    safeTypes.count(toks[j].text))
                    continue;
                Diagnostic d;
                d.file = f.relPath();
                d.line = t.line;
                d.rule = "shard-escape";
                d.message =
                    "function-local static mutable state in '" +
                    fnLabel(fn) +
                    "', which runs in shard context -- every "
                    "shard mutates one shared instance; move it "
                    "into ShardContext or make it atomic/"
                    "lock-guarded";
                d.flow = chain(fnIdx);
                d.flow.push_back({f.relPath(), t.line,
                                  "shared static declared here"});
                out.push_back(std::move(d));
                continue;
            }

            auto sv = shared.find(t.text);
            if (sv == shared.end())
                continue;
            // Not a member access of something else, not a call.
            if (i > 0 && (toks[i - 1].text == "." ||
                          toks[i - 1].text == "->" ||
                          toks[i - 1].text == "::"))
                continue;
            if (i + 1 < toks.size() && toks[i + 1].text == "(")
                continue;
            // A lexically held lock is legitimate protection.
            if (model.holdsAny(fnIdx, i))
                continue;
            Diagnostic d;
            d.file = f.relPath();
            d.line = t.line;
            d.rule = "shard-escape";
            d.message =
                "shared mutable state '" + t.text + "' (" +
                sv->second.file + ":" +
                std::to_string(sv->second.line) +
                ") is reached from shard-executed code in '" +
                fnLabel(fn) +
                "' without lock/atomic protection -- shards must "
                "own their state (see ShardContext)";
            d.flow = chain(fnIdx);
            d.flow.push_back(
                {f.relPath(), t.line,
                 "unprotected access to '" + t.text + "'"});
            out.push_back(std::move(d));
        }
    }
}

} // namespace hypertee::htlint
