#include "tools/htlint/taint.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "tools/htlint/callgraph.hh"
#include "tools/htlint/index.hh"

namespace hypertee::htlint
{

namespace
{

/** A provenance chain: how the secret got here, oldest step first. */
using Prov = std::vector<FlowStep>;

/** Chains are for humans; past this depth extra hops add nothing. */
constexpr std::size_t maxFlowSteps = 12;

// ------------------------------------------------------------- policy

/**
 * Members/calls that *produce* secret bytes. Matched by name whether
 * spelled `km.memoryKey(...)`, `KeyManager::memoryKey`, or as the
 * bare `_sealedKey` field inside KeyManager itself.
 */
const std::set<std::string> &
sourceNames()
{
    static const std::set<std::string> names = {
        "sealedKey",        "endorsementSeed", "memoryKey",
        "sealingKey",       "reportKey",       "attestationKeySeed",
        "sharedMemoryKey",  "_sealedKey",      "_endorsementSeed",
    };
    return names;
}

/**
 * Crypto transforms whose *output* is public even when an input is
 * secret: ciphertext, MAC tags, signatures, digests, and public-key
 * derivation. Arguments inside a sanitizer call are absorbed -- the
 * secret legitimately enters the primitive and only a
 * computationally-safe value leaves it.
 *
 * configureKey() is a trusted *terminus* rather than a transform:
 * it hands the key to the modelled memory-encryption hardware,
 * which sits inside the TCB. Treating it as absorbing keeps the
 * engine object itself from being marked secret (everything in the
 * simulator eventually touches the fabric, so receiver taint there
 * would drown the analysis in noise).
 */
const std::set<std::string> &
sanitizerNames()
{
    static const std::set<std::string> names = {
        "hmacSha256",         "sha3_256",         "sha3Mac28",
        "digest",             "ed25519Sign",      "ed25519PublicKey",
        "ed25519Verify",      "x25519Base",       "ctrTransform",
        "ctEqual",            "signWithEk",       "signWithAk",
        "attestationPublicKey", "endorsementPublicKey",
        "configureKey",
    };
    return names;
}

/**
 * Helpers whose output stays *as secret as their inputs*: key
 * derivation (a derived key is still a key), DH shared-secret
 * computation, and plain re-encodings like toHex. These are the
 * opposite of sanitizers and must never launder taint.
 */
const std::set<std::string> &
preservingNames()
{
    static const std::set<std::string> names = {
        "hkdf", "hkdfExtract", "hkdfExpand", "x25519", "toHex",
    };
    return names;
}

/**
 * Members that reveal nothing about the bytes: a tainted receiver
 * may expose its size or be looked up in without leaking content.
 */
const std::set<std::string> &
neutralMembers()
{
    static const std::set<std::string> names = {
        "size", "empty", "length", "capacity", "count", "find",
    };
    return names;
}

/** Sink callee -> human-readable sink kind; nullptr when not a sink. */
const char *
sinkKind(const std::string &callee)
{
    static const std::map<std::string, const char *> sinks = {
        // TraceSink / HT_TRACE: the Chrome trace is host-visible.
        {"HT_TRACE_BEGIN", "trace"},
        {"HT_TRACE_END", "trace"},
        {"HT_TRACE_INSTANT", "trace"},
        {"HT_TRACE_INSTANT1", "trace"},
        {"begin", "trace"},
        {"end", "trace"},
        {"instant", "trace"},
        {"arg", "trace"},
        // src/sim/logging + stdio: straight to the host console.
        {"warn", "log"},
        {"inform", "log"},
        {"panic", "log"},
        {"fatal", "log"},
        {"panicIf", "log"},
        {"fatalIf", "log"},
        {"printf", "log"},
        {"fprintf", "log"},
        {"snprintf", "log"},
        {"puts", "log"},
        {"fputs", "log"},
        // Stats export: dumped to --stats-json.
        {"registerScalar", "stats-export"},
        {"registerAverage", "stats-export"},
        {"registerDistribution", "stats-export"},
        {"sample", "stats-export"},
        {"dumpJson", "stats-export"},
        // Untrusted-side mailbox / EmCall payload buffers.
        {"pushRequest", "mailbox"},
        {"pushResponse", "mailbox"},
        // CS-visible physical memory.
        {"writeCs", "cs-memory"},
    };
    auto it = sinks.find(callee);
    return it == sinks.end() ? nullptr : it->second;
}

bool
isKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",     "else",   "for",    "while",  "switch", "case",
        "return", "do",     "new",    "delete", "sizeof", "const",
        "static", "auto",   "constexpr", "break", "continue",
        "throw",  "using",  "typename", "template", "goto",
    };
    return kw.count(s) > 0;
}

// -------------------------------------------------------- declassify

/** One parsed `// htlint: declassify(<reason>)` annotation. */
struct Declassify
{
    int commentLine = 0; ///< where the comment itself sits
    int coversLine = 0;  ///< statement line it declassifies
    std::string reason;
};

/**
 * Parse the declassify annotations of @p f. Same placement contract
 * as allow(): trailing a line covers that line, a comment on its own
 * line covers the next one.
 */
std::vector<Declassify>
parseDeclassify(const SourceFile &f)
{
    std::vector<Declassify> out;
    for (const Comment &c : f.comments()) {
        std::size_t tag = c.text.find("htlint:");
        if (tag == std::string::npos)
            continue;
        std::size_t d = c.text.find("declassify", tag);
        if (d == std::string::npos)
            continue;
        std::size_t open = c.text.find('(', d);
        if (open == std::string::npos)
            continue;
        std::size_t close = c.text.find(')', open);
        std::string reason =
            close == std::string::npos
                ? std::string()
                : c.text.substr(open + 1, close - open - 1);
        // Trim whitespace; an all-blank reason is no reason.
        std::size_t b = reason.find_first_not_of(" \t");
        std::size_t e = reason.find_last_not_of(" \t");
        reason = b == std::string::npos
                     ? std::string()
                     : reason.substr(b, e - b + 1);
        Declassify dc;
        dc.commentLine = c.line;
        dc.coversLine = c.ownLine ? c.endLine + 1 : c.line;
        dc.reason = reason;
        out.push_back(dc);
    }
    return out;
}

// ---------------------------------------------------------- analysis

class SecretFlowAnalysis
{
  public:
    SecretFlowAnalysis(const Project &proj,
                       std::vector<Diagnostic> &out)
        : _proj(proj), _idx(proj.index()), _cg(proj.callGraph()),
          _out(out)
    {
    }

    void run();

  private:
    /** Per-function summary: which params the return value taints,
     *  and whether it is secret regardless of arguments. */
    struct Summary
    {
        std::set<int> returnFromParams;
        bool returnConcrete = false;
        Prov returnProv;
    };

    // -- shared token utilities
    const std::vector<Token> &toksOf(int file_idx) const
    {
        return _proj.files()[static_cast<std::size_t>(file_idx)]
            ->tokens();
    }
    const SourceFile &fileOf(int file_idx) const
    {
        return *_proj.files()[static_cast<std::size_t>(file_idx)];
    }
    static std::size_t matchClose(const std::vector<Token> &toks,
                                  std::size_t open);
    std::vector<std::pair<std::size_t, std::size_t>>
    statementsOf(const FunctionDef &fn) const;
    static std::string lhsChain(const std::vector<Token> &toks,
                                std::size_t stmt_begin,
                                std::size_t lhs_end);

    bool declassified(int file_idx, int line,
                      bool require_reason = true) const;

    // -- phase A: symbolic param->return summaries
    void computeSummaries();
    std::set<int> scanSym(int fn_idx, int file_idx,
                          std::size_t begin, std::size_t end,
                          const std::map<std::string, std::set<int>>
                              &local) const;

    // -- phase B: concrete worklist propagation
    bool intraConcrete(int fn_idx);
    bool propagateCalls();
    std::optional<Prov> scanConc(int fn_idx, int file_idx,
                                 std::size_t begin,
                                 std::size_t end) const;
    std::optional<Prov> lookupTaint(int fn_idx,
                                    const std::string &name,
                                    bool prefix) const;
    void setTaint(int fn_idx, const std::string &chain,
                  const Prov &prov, int line, int file_idx,
                  bool &changed);

    // -- reporting
    void checkSinks();
    void checkStreamChains();
    void reportEmptyReasons();
    void emit(int file_idx, int line, const std::string &sink_label,
              const char *kind, Prov prov);

    static void append(Prov &prov, const std::string &file, int line,
                       std::string note);

    const Project &_proj;
    const ProjectIndex &_idx;
    const CallGraph &_cg;
    std::vector<Diagnostic> &_out;

    std::vector<Summary> _sums;
    /** Per function: tainted name (or dotted chain) -> provenance. */
    std::vector<std::map<std::string, Prov>> _fnTaint;
    /** Class fields (matched by name project-wide, `_`-prefixed). */
    std::map<std::string, Prov> _fieldTaint;
    /** (fileIdx, calleeTokenIdx) -> CallSite index. */
    std::map<std::pair<int, std::size_t>, int> _siteAt;
    /** Per function: its call sites, in token order. */
    std::vector<std::vector<int>> _callsOfFn;
    /** Per file: parsed declassify annotations. */
    std::vector<std::vector<Declassify>> _declass;
};

void
SecretFlowAnalysis::append(Prov &prov, const std::string &file,
                           int line, std::string note)
{
    if (prov.size() >= maxFlowSteps)
        return;
    FlowStep s;
    s.file = file;
    s.line = line;
    s.note = std::move(note);
    prov.push_back(std::move(s));
}

std::size_t
SecretFlowAnalysis::matchClose(const std::vector<Token> &toks,
                               std::size_t open)
{
    const bool paren = toks[open].text == "(";
    const std::string close = paren ? ")" : "}";
    const int depth = paren ? toks[open].parenDepth
                            : toks[open].braceDepth;
    std::size_t k = open + 1;
    while (k < toks.size() &&
           !(toks[k].text == close &&
             (paren ? toks[k].parenDepth : toks[k].braceDepth) ==
                 depth))
        ++k;
    return k;
}

/**
 * Split a function body into top-level statements: `;` at the body's
 * paren depth ends one, `{`/`}` are boundaries too (so nested block
 * contents become their own statements and for-headers stay whole).
 */
std::vector<std::pair<std::size_t, std::size_t>>
SecretFlowAnalysis::statementsOf(const FunctionDef &fn) const
{
    const auto &toks = toksOf(fn.fileIdx);
    const int p0 = toks[fn.open].parenDepth;
    std::vector<std::pair<std::size_t, std::size_t>> stmts;
    std::size_t s = fn.open + 1;
    for (std::size_t k = fn.open + 1;
         k < fn.close && k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.inDirective)
            continue;
        const bool boundary =
            (t.text == ";" && t.parenDepth == p0) ||
            t.text == "{" || t.text == "}";
        if (!boundary)
            continue;
        if (k > s)
            stmts.emplace_back(s, k);
        s = k + 1;
    }
    if (fn.close > s)
        stmts.emplace_back(s, fn.close);
    return stmts;
}

/**
 * Normalize the assignment target ending just before @p lhs_end into
 * a dotted chain: `enc.keyId` -> "enc.keyId", `this->_f` -> "_f",
 * `buf[i]` -> "buf". Empty when no identifier is found.
 */
std::string
SecretFlowAnalysis::lhsChain(const std::vector<Token> &toks,
                             std::size_t stmt_begin,
                             std::size_t lhs_end)
{
    std::vector<std::string> parts;
    std::size_t p = lhs_end;
    while (p > stmt_begin) {
        --p;
        if (toks[p].text == "]") {
            int depth = 1; // subscripts don't change the base object
            while (p > stmt_begin && depth > 0) {
                --p;
                if (toks[p].text == "]")
                    ++depth;
                else if (toks[p].text == "[")
                    --depth;
            }
            continue;
        }
        if (toks[p].kind == TokKind::Identifier) {
            parts.push_back(toks[p].text);
            if (p > stmt_begin && (toks[p - 1].text == "." ||
                                   toks[p - 1].text == "->")) {
                --p; // keep walking the member chain
                continue;
            }
            break;
        }
        break; // operator or paren: chain ends
    }
    std::reverse(parts.begin(), parts.end());
    if (!parts.empty() && parts.front() == "this")
        parts.erase(parts.begin());
    std::string chain;
    for (const std::string &part : parts) {
        if (!chain.empty())
            chain += ".";
        chain += part;
    }
    return chain;
}

bool
SecretFlowAnalysis::declassified(int file_idx, int line,
                                 bool require_reason) const
{
    for (const Declassify &d :
         _declass[static_cast<std::size_t>(file_idx)]) {
        if (d.coversLine != line && d.commentLine != line)
            continue;
        if (!require_reason || !d.reason.empty())
            return true;
    }
    return false;
}

// ------------------------------------------------- phase A: summaries

std::set<int>
SecretFlowAnalysis::scanSym(
    int fn_idx, int file_idx, std::size_t begin, std::size_t end,
    const std::map<std::string, std::set<int>> &local) const
{
    (void)fn_idx;
    const auto &toks = toksOf(file_idx);
    std::set<int> deps;
    for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.inDirective || t.kind != TokKind::Identifier)
            continue;
        const bool hasNext = k + 1 < toks.size();
        // Sanitizer call (plain or as a member): absorb arguments.
        if (hasNext && toks[k + 1].text == "(" &&
            sanitizerNames().count(t.text)) {
            k = matchClose(toks, k + 1);
            continue;
        }
        if (isKeyword(t.text))
            continue;
        // Receiver whose member reveals nothing: skip the pair.
        if (hasNext && (toks[k + 1].text == "." ||
                        toks[k + 1].text == "->") &&
            k + 2 < toks.size() &&
            neutralMembers().count(toks[k + 2].text)) {
            k += 2;
            continue;
        }
        auto it = local.find(t.text);
        if (it != local.end())
            deps.insert(it->second.begin(), it->second.end());
        // Dotted chains recorded by assignments.
        if (hasNext && (toks[k + 1].text == "." ||
                        toks[k + 1].text == "->")) {
            auto lo = local.lower_bound(t.text + ".");
            if (lo != local.end() &&
                lo->first.compare(0, t.text.size() + 1,
                                  t.text + ".") == 0)
                deps.insert(lo->second.begin(), lo->second.end());
        }
    }
    return deps;
}

void
SecretFlowAnalysis::computeSummaries()
{
    const auto &fns = _idx.functions();
    _sums.assign(fns.size(), Summary{});
    for (int round = 0; round < 8; ++round) {
        bool changed = false;
        for (std::size_t fi = 0; fi < fns.size(); ++fi) {
            const FunctionDef &fn = fns[fi];
            const auto &toks = toksOf(fn.fileIdx);
            std::map<std::string, std::set<int>> local;
            for (std::size_t p = 0; p < fn.params.size(); ++p)
                if (!fn.params[p].empty())
                    local[fn.params[p]] = {static_cast<int>(p)};
            auto stmts = statementsOf(fn);
            for (int pass = 0; pass < 4; ++pass) {
                bool moved = false;
                for (const auto &[s, e] : stmts) {
                    if (s >= e)
                        continue;
                    // `return expr;` -- possibly after `if (...)`.
                    for (std::size_t r = s; r < e; ++r) {
                        if (toks[r].text != "return" ||
                            toks[r].parenDepth !=
                                toks[fn.open].parenDepth)
                            continue;
                        std::set<int> deps = scanSym(
                            static_cast<int>(fi), fn.fileIdx, r + 1,
                            e, local);
                        for (int d : deps)
                            changed |=
                                _sums[fi]
                                    .returnFromParams.insert(d)
                                    .second;
                        break;
                    }
                    if (toks[s].text == "return")
                        continue;
                    // Declaration with ctor args: `Type name(...)`.
                    std::size_t j = s;
                    while (j < e && isKeyword(toks[j].text) &&
                           toks[j].text != "return")
                        ++j;
                    if (j + 2 < e &&
                        toks[j].kind == TokKind::Identifier &&
                        toks[j + 1].kind == TokKind::Identifier &&
                        !isKeyword(toks[j].text) &&
                        !isKeyword(toks[j + 1].text) &&
                        (toks[j + 2].text == "(" ||
                         toks[j + 2].text == "{")) {
                        std::size_t close =
                            matchClose(toks, j + 2);
                        std::set<int> deps = scanSym(
                            static_cast<int>(fi), fn.fileIdx, j + 3,
                            close, local);
                        auto &slot = local[toks[j + 1].text];
                        for (int d : deps)
                            moved |= slot.insert(d).second;
                    }
                    // Assignments (plain and compound).
                    const int p0 = toks[fn.open].parenDepth;
                    for (std::size_t a = s; a < e; ++a) {
                        if (toks[a].text != "=" ||
                            toks[a].parenDepth != p0)
                            continue;
                        if (a + 1 < e && toks[a + 1].text == "=")
                            continue;
                        if (a > s) {
                            const std::string &prev =
                                toks[a - 1].text;
                            if (prev == "=" || prev == "<" ||
                                prev == ">" || prev == "!")
                                continue;
                        }
                        std::size_t lhs_end = a;
                        if (a > s && toks[a - 1].kind ==
                                         TokKind::Punct &&
                            std::string("+-*/|&^%").find(
                                toks[a - 1].text) !=
                                std::string::npos)
                            lhs_end = a - 1;
                        std::string chain =
                            lhsChain(toks, s, lhs_end);
                        if (chain.empty())
                            continue;
                        std::set<int> deps = scanSym(
                            static_cast<int>(fi), fn.fileIdx, a + 1,
                            e, local);
                        auto &slot = local[chain];
                        for (int d : deps)
                            moved |= slot.insert(d).second;
                    }
                }
                if (!moved)
                    break;
            }
        }
        if (!changed)
            break;
    }
}

// --------------------------------------------- phase B: concrete taint

std::optional<Prov>
SecretFlowAnalysis::lookupTaint(int fn_idx, const std::string &name,
                                bool prefix) const
{
    if (fn_idx >= 0) {
        const auto &local =
            _fnTaint[static_cast<std::size_t>(fn_idx)];
        auto it = local.find(name);
        if (it != local.end())
            return it->second;
        if (prefix) {
            auto lo = local.lower_bound(name + ".");
            if (lo != local.end() &&
                lo->first.compare(0, name.size() + 1, name + ".") ==
                    0)
                return lo->second;
        }
    }
    if (!name.empty() && name[0] == '_') {
        auto it = _fieldTaint.find(name);
        if (it != _fieldTaint.end())
            return it->second;
    }
    return std::nullopt;
}

/**
 * Is [begin, end) a top-level equality comparison? Its value is a
 * single bool, not secret content (mismatch *position* leaks are
 * what ctEqual is for), so `panicIf(it == _keys.end(), ...)` and
 * friends stay clean.
 */
bool
isBooleanComparison(const std::vector<Token> &toks,
                    std::size_t begin, std::size_t end)
{
    int base = -1;
    for (std::size_t k = begin; k < end && k < toks.size(); ++k)
        if (!toks[k].inDirective &&
            (base < 0 || toks[k].parenDepth < base))
            base = toks[k].parenDepth;
    for (std::size_t k = begin; k + 1 < end && k + 1 < toks.size();
         ++k) {
        if (toks[k].inDirective || toks[k].parenDepth != base)
            continue;
        if (toks[k + 1].text != "=")
            continue;
        if (toks[k].text == "=" || toks[k].text == "!")
            return true; // `a == b` / `a != b` (lexed as = = / ! =)
    }
    return false;
}

std::optional<Prov>
SecretFlowAnalysis::scanConc(int fn_idx, int file_idx,
                             std::size_t begin,
                             std::size_t end) const
{
    const auto &toks = toksOf(file_idx);
    const SourceFile &f = fileOf(file_idx);
    if (isBooleanComparison(toks, begin, end))
        return std::nullopt;
    for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.inDirective || t.kind != TokKind::Identifier)
            continue;
        if (declassified(file_idx, t.line))
            continue;
        const bool hasNext = k + 1 < toks.size();
        const std::string next = hasNext ? toks[k + 1].text : "";
        const bool prevSep =
            k > 0 && (toks[k - 1].text == "." ||
                      toks[k - 1].text == "->" ||
                      toks[k - 1].text == "::");

        if (next == "(") {
            // ---- call expression
            if (sanitizerNames().count(t.text)) {
                k = matchClose(toks, k + 1); // output is public
                continue;
            }
            if (sourceNames().count(t.text)) {
                Prov p;
                append(p, f.relPath(), t.line,
                       "secret source '" + t.text + "'");
                return p;
            }
            // Enclave-private page contents: reads through the
            // mediated EMS port (`_port->readCs`). The CS-side
            // IHub::readCs only ever returns bitmap-checked
            // non-enclave pages, so plain readCs stays clean.
            if (t.text == "readCs" && k >= 2 &&
                toks[k - 1].text == "->" &&
                toks[k - 2].text == "_port") {
                Prov p;
                append(p, f.relPath(), t.line,
                       "secret source 'enclave page contents via "
                       "_port->readCs'");
                return p;
            }
            auto site = _siteAt.find({file_idx, k});
            const bool preserving =
                preservingNames().count(t.text) > 0;
            std::vector<
                std::pair<std::size_t, std::size_t>> const *args =
                nullptr;
            if (site != _siteAt.end())
                args = &_idx.calls()[static_cast<std::size_t>(
                                         site->second)]
                            .args;
            if (preserving && args) {
                for (const auto &[ab, ae] : *args) {
                    auto p = scanConc(fn_idx, file_idx, ab, ae);
                    if (p) {
                        append(*p, f.relPath(), t.line,
                               "stays secret through '" + t.text +
                                   "'");
                        return p;
                    }
                }
                k = matchClose(toks, k + 1);
                continue;
            }
            if (site != _siteAt.end()) {
                const auto &callees =
                    _cg.calleesOf(site->second);
                if (!callees.empty()) {
                    for (int c : callees) {
                        const Summary &sum =
                            _sums[static_cast<std::size_t>(c)];
                        if (sum.returnConcrete) {
                            Prov p = sum.returnProv;
                            append(p, f.relPath(), t.line,
                                   "returned by '" + t.text + "'");
                            return p;
                        }
                        for (int pi : sum.returnFromParams) {
                            if (pi < 0 ||
                                pi >= static_cast<int>(
                                          args->size()))
                                continue;
                            const auto &[ab, ae] =
                                (*args)[static_cast<std::size_t>(
                                    pi)];
                            auto p = scanConc(fn_idx, file_idx, ab,
                                              ae);
                            if (p) {
                                append(*p, f.relPath(), t.line,
                                       "flows through '" + t.text +
                                           "' return");
                                return p;
                            }
                        }
                    }
                    // All callees known: the summaries are the
                    // whole story, don't re-scan atoms inline.
                    k = matchClose(toks, k + 1);
                    continue;
                }
            }
            // Unknown callee (std::, macros): fall through and scan
            // the argument atoms inline -- it may return its input.
            continue;
        }

        if (next == "." || next == "->") {
            // ---- receiver position
            const std::string member =
                k + 2 < toks.size() &&
                        toks[k + 2].kind == TokKind::Identifier
                    ? toks[k + 2].text
                    : "";
            // `x.sanitizer(...)`: public output, absorb the call.
            if (!member.empty() && k + 3 < toks.size() &&
                toks[k + 3].text == "(" &&
                sanitizerNames().count(member)) {
                k = matchClose(toks, k + 3);
                continue;
            }
            if (!member.empty()) {
                auto composite = lookupTaint(
                    fn_idx, t.text + "." + member, false);
                if (composite) {
                    Prov p = *composite;
                    append(p, f.relPath(), t.line,
                           "reads tainted '" + t.text + "." +
                               member + "'");
                    return p;
                }
            }
            auto recv = lookupTaint(fn_idx, t.text, false);
            if (recv) {
                if (neutralMembers().count(member)) {
                    k += 2; // size()/find(): reveals nothing
                    continue;
                }
                Prov p = *recv;
                append(p, f.relPath(), t.line,
                       "member of tainted '" + t.text + "'");
                return p;
            }
            continue; // member token gets its own source check
        }

        if (next == "::")
            continue; // qualifier

        // ---- plain atom
        if (isKeyword(t.text))
            continue;
        if (sourceNames().count(t.text) &&
            (prevSep || t.text[0] == '_')) {
            Prov p;
            append(p, f.relPath(), t.line,
                   "secret source '" + t.text + "'");
            return p;
        }
        auto hit = lookupTaint(fn_idx, t.text, /*prefix=*/true);
        if (hit) {
            Prov p = *hit;
            append(p, f.relPath(), t.line,
                   "tainted '" + t.text + "'");
            return p;
        }
    }
    return std::nullopt;
}

void
SecretFlowAnalysis::setTaint(int fn_idx, const std::string &chain,
                             const Prov &prov, int line,
                             int file_idx, bool &changed)
{
    Prov noted = prov;
    append(noted, fileOf(file_idx).relPath(), line,
           "assigned to '" + chain + "'");
    if (fn_idx >= 0) {
        auto &local = _fnTaint[static_cast<std::size_t>(fn_idx)];
        if (!local.count(chain)) {
            local[chain] = noted;
            changed = true;
        }
    }
    // `_`-prefixed bases are (almost always) class fields; track
    // them project-wide so sibling methods see the taint.
    std::string base = chain.substr(0, chain.find('.'));
    if (!base.empty() && base[0] == '_' &&
        !_fieldTaint.count(base)) {
        _fieldTaint[base] = noted;
        changed = true;
    }
}

bool
SecretFlowAnalysis::intraConcrete(int fn_idx)
{
    const FunctionDef &fn =
        _idx.functions()[static_cast<std::size_t>(fn_idx)];
    const auto &toks = toksOf(fn.fileIdx);
    bool changed = false;
    auto stmts = statementsOf(fn);
    for (int pass = 0; pass < 6; ++pass) {
        bool moved = false;
        for (const auto &[s, e] : stmts) {
            if (s >= e)
                continue;
            if (declassified(fn.fileIdx, toks[s].line))
                continue; // annotated public at this point
            // `return expr;` -- possibly after `if (...)`.
            for (std::size_t r = s; r < e; ++r) {
                if (toks[r].text != "return" ||
                    toks[r].parenDepth != toks[fn.open].parenDepth)
                    continue;
                auto p = scanConc(fn_idx, fn.fileIdx, r + 1, e);
                if (p && !_sums[static_cast<std::size_t>(fn_idx)]
                              .returnConcrete) {
                    auto &sum =
                        _sums[static_cast<std::size_t>(fn_idx)];
                    sum.returnConcrete = true;
                    sum.returnProv = *p;
                    append(sum.returnProv,
                           fileOf(fn.fileIdx).relPath(),
                           toks[r].line,
                           "returned from '" + fn.name + "'");
                    changed = true;
                }
                break;
            }
            if (toks[s].text == "return")
                continue;
            // Declaration with ctor args: `Type name(...)` / `{...}`.
            std::size_t j = s;
            while (j < e && isKeyword(toks[j].text) &&
                   toks[j].text != "return")
                ++j;
            if (j + 2 < e && toks[j].kind == TokKind::Identifier &&
                toks[j + 1].kind == TokKind::Identifier &&
                !isKeyword(toks[j].text) &&
                !isKeyword(toks[j + 1].text) &&
                (toks[j + 2].text == "(" ||
                 toks[j + 2].text == "{")) {
                std::size_t close = matchClose(toks, j + 2);
                auto p =
                    scanConc(fn_idx, fn.fileIdx, j + 3, close);
                if (p)
                    setTaint(fn_idx, toks[j + 1].text, *p,
                             toks[j + 1].line, fn.fileIdx, moved);
            }
            // Assignments.
            const int p0 = toks[fn.open].parenDepth;
            for (std::size_t a = s; a < e; ++a) {
                if (toks[a].text != "=" ||
                    toks[a].parenDepth != p0)
                    continue;
                if (a + 1 < e && toks[a + 1].text == "=")
                    continue;
                if (a > s) {
                    const std::string &prev = toks[a - 1].text;
                    if (prev == "=" || prev == "<" ||
                        prev == ">" || prev == "!")
                        continue;
                }
                std::size_t lhs_end = a;
                if (a > s && toks[a - 1].kind == TokKind::Punct &&
                    std::string("+-*/|&^%").find(
                        toks[a - 1].text) != std::string::npos)
                    lhs_end = a - 1;
                std::string chain = lhsChain(toks, s, lhs_end);
                if (chain.empty())
                    continue;
                auto p = scanConc(fn_idx, fn.fileIdx, a + 1, e);
                if (p)
                    setTaint(fn_idx, chain, *p, toks[a].line,
                             fn.fileIdx, moved);
            }
        }
        changed |= moved;
        if (!moved)
            break;
    }
    // Receiver mutation: `recv.append(secret)` makes recv secret.
    for (int ci : _callsOfFn[static_cast<std::size_t>(fn_idx)]) {
        const CallSite &site =
            _idx.calls()[static_cast<std::size_t>(ci)];
        if (site.receiver.empty() || site.qualified)
            continue;
        if (sanitizerNames().count(site.callee) ||
            neutralMembers().count(site.callee))
            continue;
        if (declassified(site.fileIdx, site.line))
            continue;
        for (const auto &[ab, ae] : site.args) {
            auto p = scanConc(fn_idx, site.fileIdx, ab, ae);
            if (!p)
                continue;
            append(*p, fileOf(site.fileIdx).relPath(), site.line,
                   "written into '" + site.receiver + "' via '" +
                       site.callee + "'");
            bool moved = false;
            setTaint(fn_idx, site.receiver, *p, site.line,
                     site.fileIdx, moved);
            changed |= moved;
            break;
        }
    }
    return changed;
}

bool
SecretFlowAnalysis::propagateCalls()
{
    bool changed = false;
    const auto &calls = _idx.calls();
    for (std::size_t ci = 0; ci < calls.size(); ++ci) {
        const CallSite &site = calls[ci];
        if (sanitizerNames().count(site.callee))
            continue; // trust boundary: crypto eats the secret
        if (declassified(site.fileIdx, site.line))
            continue;
        const auto &callees =
            _cg.calleesOf(static_cast<int>(ci));
        if (callees.empty())
            continue;
        for (std::size_t argi = 0; argi < site.args.size();
             ++argi) {
            auto p = scanConc(site.callerFn, site.fileIdx,
                              site.args[argi].first,
                              site.args[argi].second);
            if (!p)
                continue;
            for (int c : callees) {
                const FunctionDef &callee =
                    _idx.functions()[static_cast<std::size_t>(c)];
                if (argi >= callee.params.size() ||
                    callee.params[argi].empty())
                    continue;
                auto &local =
                    _fnTaint[static_cast<std::size_t>(c)];
                if (local.count(callee.params[argi]))
                    continue;
                Prov noted = *p;
                append(noted, fileOf(site.fileIdx).relPath(),
                       site.line,
                       "passed to '" + site.callee + "(" +
                           callee.params[argi] + ")'");
                local[callee.params[argi]] = std::move(noted);
                changed = true;
            }
        }
    }
    return changed;
}

// ---------------------------------------------------------- reporting

void
SecretFlowAnalysis::emit(int file_idx, int line,
                         const std::string &sink_label,
                         const char *kind, Prov prov)
{
    const SourceFile &f = fileOf(file_idx);
    append(prov, f.relPath(), line,
           "sink '" + sink_label + "' (" + kind + ")");
    std::string path;
    for (const FlowStep &s : prov) {
        if (!path.empty())
            path += " -> ";
        path += s.note;
    }
    Diagnostic d;
    d.file = f.relPath();
    d.line = line;
    d.rule = "secret-flow";
    d.message = "enclave secret reaches " + std::string(kind) +
                " sink '" + sink_label + "' [" + path +
                "] -- encrypt/MAC/hash it first, or annotate "
                "'// htlint: declassify(<reason>)'";
    d.flow = std::move(prov);
    _out.push_back(std::move(d));
}

void
SecretFlowAnalysis::checkSinks()
{
    const auto &calls = _idx.calls();
    for (std::size_t ci = 0; ci < calls.size(); ++ci) {
        const CallSite &site = calls[ci];
        const char *kind = sinkKind(site.callee);
        if (!kind)
            continue;
        if (declassified(site.fileIdx, site.line))
            continue;
        for (const auto &[ab, ae] : site.args) {
            auto p = scanConc(site.callerFn, site.fileIdx, ab, ae);
            if (!p)
                continue;
            emit(site.fileIdx, site.line, site.callee, kind,
                 std::move(*p));
            break; // one finding per call site
        }
    }
}

void
SecretFlowAnalysis::checkStreamChains()
{
    const auto &files = _proj.files();
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const auto &toks = files[fi]->tokens();
        for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
            const Token &t = toks[k];
            if (t.inDirective || t.kind != TokKind::Identifier)
                continue;
            if (t.text != "cout" && t.text != "cerr" &&
                t.text != "clog")
                continue;
            if (toks[k + 1].text != "<" || toks[k + 2].text != "<")
                continue;
            if (declassified(static_cast<int>(fi), t.line))
                continue;
            // The chain runs to the statement's `;`.
            std::size_t e = k + 3;
            while (e < toks.size() &&
                   !(toks[e].text == ";" &&
                     toks[e].parenDepth == t.parenDepth))
                ++e;
            int fn = _idx.functionAt(static_cast<int>(fi), k);
            auto p =
                scanConc(fn, static_cast<int>(fi), k + 3, e);
            if (p)
                emit(static_cast<int>(fi), t.line,
                     "std::" + t.text, "stdout/stderr",
                     std::move(*p));
            k = e;
        }
    }
}

void
SecretFlowAnalysis::reportEmptyReasons()
{
    const auto &files = _proj.files();
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        for (const Declassify &d : _declass[fi]) {
            if (!d.reason.empty())
                continue;
            Diagnostic diag;
            diag.file = files[fi]->relPath();
            diag.line = d.commentLine;
            diag.rule = "secret-flow";
            diag.message =
                "declassify() requires a non-empty reason -- state "
                "*why* this value is safe to reveal, e.g. "
                "'// htlint: declassify(MAC tag is public)'";
            _out.push_back(std::move(diag));
        }
    }
}

void
SecretFlowAnalysis::run()
{
    const auto &files = _proj.files();
    _declass.resize(files.size());
    for (std::size_t fi = 0; fi < files.size(); ++fi)
        _declass[fi] = parseDeclassify(*files[fi]);

    const auto &calls = _idx.calls();
    _callsOfFn.assign(_idx.functions().size(), {});
    for (std::size_t ci = 0; ci < calls.size(); ++ci) {
        _siteAt[{calls[ci].fileIdx, calls[ci].tokenIdx}] =
            static_cast<int>(ci);
        if (calls[ci].callerFn >= 0)
            _callsOfFn[static_cast<std::size_t>(
                           calls[ci].callerFn)]
                .push_back(static_cast<int>(ci));
    }

    computeSummaries();

    _fnTaint.assign(_idx.functions().size(), {});
    for (int round = 0; round < 16; ++round) {
        bool changed = false;
        for (std::size_t fi = 0; fi < _idx.functions().size();
             ++fi)
            changed |= intraConcrete(static_cast<int>(fi));
        changed |= propagateCalls();
        if (!changed)
            break;
    }

    checkSinks();
    checkStreamChains();
    reportEmptyReasons();
}

} // namespace

void
checkSecretFlow(const Project &proj, std::vector<Diagnostic> &out)
{
    SecretFlowAnalysis(proj, out).run();
}

} // namespace hypertee::htlint
