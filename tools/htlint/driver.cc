#include "tools/htlint/driver.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "tools/htlint/callgraph.hh"
#include "tools/htlint/index.hh"
#include "tools/htlint/sarif.hh"

namespace hypertee::htlint
{

// ---------------------------------------------------------------- Project

Project::Project() = default;
Project::~Project() = default;

bool
Project::addFile(const std::string &path, const std::string &rel_path)
{
    auto f = std::make_unique<SourceFile>();
    if (!f->load(path, rel_path))
        return false;
    addParsed(std::move(f));
    return true;
}

void
Project::addText(std::string text, const std::string &rel_path)
{
    auto f = std::make_unique<SourceFile>();
    f->loadText(std::move(text), rel_path);
    addParsed(std::move(f));
}

void
Project::addParsed(std::unique_ptr<SourceFile> file)
{
    indexFile(*file);
    _byRelPath[file->relPath()] = _files.size();
    _files.push_back(std::move(file));
    _index.reset();
    _callGraph.reset();
}

void
Project::indexFile(const SourceFile &f)
{
    for (const Block &b : f.blocks()) {
        if (b.kind == Block::Kind::Type && !b.name.empty() &&
            !b.bases.empty()) {
            auto &bases = _classBases[b.name];
            bases.insert(bases.end(), b.bases.begin(),
                         b.bases.end());
        }
    }
    // Functions declared to return PhysicalMemory& / PhysicalMemory*
    // (accessors like HyperTeeSystem::csMem) -- the mediation rule
    // treats calls through them as direct physical-memory access.
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].inDirective ||
            toks[i].kind != TokKind::Identifier ||
            toks[i].text != "PhysicalMemory")
            continue;
        if (toks[i + 1].text != "&" && toks[i + 1].text != "*")
            continue;
        if (toks[i + 2].kind != TokKind::Identifier ||
            toks[i + 3].text != "(")
            continue;
        if (f.enclosingFunction(i) >= 0)
            continue; // local variable with ctor args, not a decl
        _physMemAccessors.insert(toks[i + 2].text);
    }
}

const ProjectIndex &
Project::index() const
{
    if (!_index) {
        _index = std::make_unique<ProjectIndex>();
        _index->build(_files);
    }
    return *_index;
}

const CallGraph &
Project::callGraph() const
{
    if (!_callGraph) {
        _callGraph = std::make_unique<CallGraph>();
        _callGraph->build(index());
    }
    return *_callGraph;
}

const SourceFile *
Project::pairOf(const SourceFile &file) const
{
    const std::string &rel = file.relPath();
    auto swap_ext = [&](const char *from,
                        const char *to) -> const SourceFile * {
        std::string f(from);
        if (rel.size() <= f.size() ||
            rel.compare(rel.size() - f.size(), f.size(), f) != 0)
            return nullptr;
        std::string other =
            rel.substr(0, rel.size() - f.size()) + to;
        auto it = _byRelPath.find(other);
        return it == _byRelPath.end() ? nullptr
                                      : _files[it->second].get();
    };
    if (const SourceFile *p = swap_ext(".cc", ".hh"))
        return p;
    if (const SourceFile *p = swap_ext(".hh", ".cc"))
        return p;
    if (const SourceFile *p = swap_ext(".cpp", ".hpp"))
        return p;
    if (const SourceFile *p = swap_ext(".hpp", ".cpp"))
        return p;
    return nullptr;
}

const std::vector<std::string> &
Project::basesOf(const std::string &class_name) const
{
    static const std::vector<std::string> none;
    auto it = _classBases.find(class_name);
    return it == _classBases.end() ? none : it->second;
}

bool
Project::derivesFrom(const std::string &class_name,
                     const std::string &base) const
{
    std::vector<std::string> todo = {class_name};
    std::set<std::string> seen;
    while (!todo.empty()) {
        std::string cur = todo.back();
        todo.pop_back();
        if (!seen.insert(cur).second)
            continue;
        for (const std::string &b : basesOf(cur)) {
            if (b == base)
                return true;
            todo.push_back(b);
        }
    }
    return false;
}

std::vector<Diagnostic>
Project::run(const std::set<std::string> &rules) const
{
    std::vector<Diagnostic> out;
    for (const RuleInfo &r : allRules()) {
        if (!rules.empty() && !rules.count(r.name))
            continue;
        if (r.checkProject)
            r.checkProject(*this, out);
        if (!r.check)
            continue;
        for (const auto &f : _files)
            r.check(*f, *this, out);
    }
    // Drop suppressed findings.
    std::vector<Diagnostic> kept;
    for (Diagnostic &d : out) {
        auto it = _byRelPath.find(d.file);
        if (it != _byRelPath.end() &&
            _files[it->second]->suppressed(d.rule, d.line))
            continue;
        kept.push_back(std::move(d));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return kept;
}

// ------------------------------------------------------------------- CLI

namespace
{

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

const char usage[] =
    "usage: htlint [--rules=r1,r2] [--format=text|sarif]\n"
    "              [--baseline=FILE] [--write-baseline=FILE]\n"
    "              [--jobs=N] [--no-default-excludes] [--stats]\n"
    "              [--list-rules] [--list-suppressions]\n"
    "              <files-or-dirs>...\n";

/** Validate one rule name; explains with a hint on failure. */
bool
checkRuleName(const std::string &name, const char *what,
              std::ostream &err)
{
    for (const RuleInfo &info : allRules())
        if (name == info.name)
            return true;
    err << "htlint: unknown rule '" << name << "' in " << what;
    std::string hint = closestRuleName(name);
    if (!hint.empty())
        err << " (did you mean '" << hint << "'?)";
    err << "\n";
    return false;
}

/** Escape one baseline-key field: the separator is a tab, so tabs,
 *  newlines, and the escape character itself must be encoded. */
std::string
escapeBaselineField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
baselineKey(const Diagnostic &d)
{
    return escapeBaselineField(d.rule) + "\t" +
           escapeBaselineField(d.file) + "\t" +
           escapeBaselineField(d.message);
}

std::string
legacyBaselineKey(const Diagnostic &d)
{
    return d.rule + "|" + d.file + "|" + d.message;
}

std::string
closestRuleName(const std::string &name)
{
    std::string best;
    std::size_t best_dist = name.size(); // worse than this: no hint
    for (const RuleInfo &info : allRules()) {
        std::size_t dist = editDistance(name, info.name);
        if (dist < best_dist || (dist == best_dist && best.empty())) {
            best_dist = dist;
            best = info.name;
        }
    }
    return best_dist <= 3 ? best : "";
}

bool
parseArgs(int argc, const char *const *argv, Options &opts,
          std::ostream &err)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            opts.listRules = true;
        } else if (arg == "--list-suppressions") {
            opts.listSuppressions = true;
        } else if (arg == "--no-default-excludes") {
            opts.defaultExcludes = false;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg.rfind("--rules=", 0) == 0) {
            std::string list = arg.substr(8);
            std::size_t start = 0;
            while (start <= list.size()) {
                std::size_t comma = list.find(',', start);
                std::string name =
                    comma == std::string::npos
                        ? list.substr(start)
                        : list.substr(start, comma - start);
                if (!name.empty())
                    opts.rules.insert(name);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (arg.rfind("--format=", 0) == 0) {
            opts.format = arg.substr(9);
            if (opts.format != "text" && opts.format != "sarif") {
                err << "htlint: unknown format '" << opts.format
                    << "' (expected text or sarif)\n";
                return false;
            }
        } else if (arg.rfind("--baseline=", 0) == 0) {
            opts.baselinePath = arg.substr(11);
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            opts.writeBaselinePath = arg.substr(17);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            try {
                opts.jobs = std::stoi(arg.substr(7));
            } catch (...) {
                opts.jobs = 0;
            }
            if (opts.jobs < 1) {
                err << "htlint: --jobs needs a positive integer\n";
                return false;
            }
        } else if (arg == "--help" || arg == "-h") {
            err << usage;
            return false;
        } else if (!arg.empty() && arg[0] == '-') {
            err << "htlint: unknown option '" << arg << "'\n";
            return false;
        } else {
            opts.paths.push_back(arg);
        }
    }
    if (!opts.listRules && opts.paths.empty()) {
        err << usage;
        return false;
    }
    for (const std::string &r : opts.rules)
        if (!checkRuleName(r, "--rules", err))
            return false;
    return true;
}

std::vector<std::string>
collectFiles(const std::vector<std::string> &paths, std::ostream &err,
             bool default_excludes)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::set<std::string> seen; // canonical identities
    auto wanted = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
               ext == ".hpp" || ext == ".h";
    };
    auto add = [&](const fs::path &p) {
        // Dedupe by canonical path so overlapping directory
        // arguments (`htlint src src/mem`, absolute vs relative
        // spellings) scan each file exactly once; keep the first
        // spelling for display.
        std::error_code ec;
        fs::path canon = fs::weakly_canonical(p, ec);
        std::string key = ec ? p.lexically_normal().generic_string()
                             : canon.generic_string();
        if (seen.insert(key).second)
            files.push_back(p.lexically_normal().generic_string());
    };
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end;
                 !ec && it != end; it.increment(ec)) {
                if (default_excludes && it->is_directory(ec) &&
                    it->path().filename() == "fixtures") {
                    // Lint-fixture corpora contain deliberate
                    // violations; they are linted via loadText in
                    // the fixture tests, not from disk.
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file(ec) && wanted(it->path()))
                    add(it->path());
            }
        } else if (fs::is_regular_file(p, ec)) {
            add(fs::path(p));
        } else {
            err << "htlint: cannot read '" << p << "'\n";
            return {};
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

int
runHtlint(const Options &opts, std::ostream &out, std::ostream &err)
{
    if (opts.listRules) {
        for (const RuleInfo &r : allRules())
            out << r.name << "\n    " << r.description << "\n";
        return 0;
    }
    // Wall-clock is legal here (no-wallclock scopes to src/): the
    // --stats phase report is how CI proves the full-tree scan stays
    // fast as rules accumulate.
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    std::vector<std::string> files =
        collectFiles(opts.paths, err, opts.defaultExcludes);
    if (files.empty()) {
        err << "htlint: no input files\n";
        return 2;
    }
    const auto tCollect = Clock::now();

    // Load (lex + scope analysis) in parallel, then assemble the
    // project in deterministic file order.
    std::vector<std::unique_ptr<SourceFile>> loaded(files.size());
    int jobs = std::min<int>(opts.jobs,
                             static_cast<int>(files.size()));
    auto load_range = [&](std::size_t begin, std::size_t step) {
        for (std::size_t i = begin; i < files.size(); i += step) {
            auto f = std::make_unique<SourceFile>();
            if (f->load(files[i], files[i]))
                loaded[i] = std::move(f);
        }
    };
    if (jobs <= 1) {
        load_range(0, 1);
    } else {
        std::vector<std::thread> workers;
        for (int w = 0; w < jobs; ++w)
            workers.emplace_back(load_range,
                                 static_cast<std::size_t>(w),
                                 static_cast<std::size_t>(jobs));
        for (std::thread &w : workers)
            w.join();
    }
    const auto tLoad = Clock::now();

    Project proj;
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (!loaded[i]) {
            err << "htlint: cannot read '" << files[i] << "'\n";
            return 2;
        }
        proj.addParsed(std::move(loaded[i]));
    }

    // Reject suppression comments naming unknown rules: a stale or
    // misspelled allow() hides nothing but looks like it does.
    bool bad_allow = false;
    for (const auto &f : proj.files()) {
        for (const SourceFile::AllowSite &site : f->allowSites()) {
            if (checkRuleName(site.rule,
                              (f->relPath() + ":" +
                               std::to_string(site.line) +
                               " allow() comment")
                                  .c_str(),
                              err))
                continue;
            bad_allow = true;
        }
    }
    if (bad_allow)
        return 2;

    if (opts.listSuppressions) {
        std::size_t n = 0;
        for (const auto &f : proj.files()) {
            for (const SourceFile::AllowSite &site :
                 f->allowSites()) {
                out << f->relPath() << ":" << site.line << ": "
                    << (site.fileWide ? "allow-file" : "allow")
                    << "(" << site.rule << ")\n";
                ++n;
            }
        }
        out << "htlint: " << n << " suppression(s) in "
            << files.size() << " files\n";
        return 0;
    }

    // Force the lazy phases individually so --stats attributes time
    // to index / callgraph / rules instead of lumping them together.
    proj.index();
    const auto tIndex = Clock::now();
    proj.callGraph();
    const auto tGraph = Clock::now();

    std::vector<Diagnostic> diags = proj.run(opts.rules);
    const auto tRules = Clock::now();

    if (opts.stats) {
        auto ms = [](Clock::time_point a, Clock::time_point b) {
            return std::chrono::duration<double, std::milli>(b - a)
                .count();
        };
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "htlint: --stats: collect %.1f ms, load %.1f ms, "
            "index %.1f ms, callgraph %.1f ms, rules %.1f ms, "
            "total %.1f ms (%zu files, jobs=%d)\n",
            ms(t0, tCollect), ms(tCollect, tLoad),
            ms(tLoad, tIndex), ms(tIndex, tGraph),
            ms(tGraph, tRules), ms(t0, tRules), files.size(),
            opts.jobs);
        err << buf;
    }

    if (!opts.writeBaselinePath.empty()) {
        std::ofstream bl(opts.writeBaselinePath);
        if (!bl) {
            err << "htlint: cannot write baseline '"
                << opts.writeBaselinePath << "'\n";
            return 2;
        }
        for (const Diagnostic &d : diags)
            bl << baselineKey(d) << "\n";
        out << "htlint: wrote " << diags.size()
            << " finding(s) to baseline " << opts.writeBaselinePath
            << "\n";
        return 0;
    }

    std::size_t baselined = 0;
    if (!opts.baselinePath.empty()) {
        std::ifstream bl(opts.baselinePath);
        if (!bl) {
            err << "htlint: cannot read baseline '"
                << opts.baselinePath << "'\n";
            return 2;
        }
        std::set<std::string> known;
        std::string line;
        while (std::getline(bl, line))
            if (!line.empty())
                known.insert(line);
        std::vector<Diagnostic> fresh;
        for (Diagnostic &d : diags) {
            // Accept both the current escaped-tab key and the old
            // `rule|file|message` format, so existing baselines
            // keep filtering after an htlint upgrade.
            if (known.count(baselineKey(d)) ||
                known.count(legacyBaselineKey(d)))
                ++baselined;
            else
                fresh.push_back(std::move(d));
        }
        diags = std::move(fresh);
    }

    if (opts.format == "sarif") {
        writeSarif(diags, out);
        return diags.empty() ? 0 : 1;
    }

    for (const Diagnostic &d : diags)
        out << d.file << ":" << d.line << ": [" << d.rule << "] "
            << d.message << "\n";
    if (diags.empty()) {
        out << "htlint: clean (" << files.size() << " files";
        if (baselined)
            out << ", " << baselined << " baselined finding(s)";
        out << ")\n";
        return 0;
    }
    out << "htlint: " << diags.size() << " violation(s) in "
        << files.size() << " files (suppress with "
           "'// htlint: allow(<rule>)')\n";
    return 1;
}

} // namespace hypertee::htlint
