#include "tools/htlint/driver.hh"

#include <algorithm>
#include <filesystem>

namespace hypertee::htlint
{

// ---------------------------------------------------------------- Project

bool
Project::addFile(const std::string &path, const std::string &rel_path)
{
    auto f = std::make_unique<SourceFile>();
    if (!f->load(path, rel_path))
        return false;
    indexFile(*f);
    _byRelPath[rel_path] = _files.size();
    _files.push_back(std::move(f));
    return true;
}

void
Project::addText(std::string text, const std::string &rel_path)
{
    auto f = std::make_unique<SourceFile>();
    f->loadText(std::move(text), rel_path);
    indexFile(*f);
    _byRelPath[rel_path] = _files.size();
    _files.push_back(std::move(f));
}

void
Project::indexFile(const SourceFile &f)
{
    for (const Block &b : f.blocks()) {
        if (b.kind == Block::Kind::Type && !b.name.empty() &&
            !b.bases.empty()) {
            auto &bases = _classBases[b.name];
            bases.insert(bases.end(), b.bases.begin(),
                         b.bases.end());
        }
    }
    // Functions declared to return PhysicalMemory& / PhysicalMemory*
    // (accessors like HyperTeeSystem::csMem) -- the mediation rule
    // treats calls through them as direct physical-memory access.
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].inDirective ||
            toks[i].kind != TokKind::Identifier ||
            toks[i].text != "PhysicalMemory")
            continue;
        if (toks[i + 1].text != "&" && toks[i + 1].text != "*")
            continue;
        if (toks[i + 2].kind != TokKind::Identifier ||
            toks[i + 3].text != "(")
            continue;
        if (f.enclosingFunction(i) >= 0)
            continue; // local variable with ctor args, not a decl
        _physMemAccessors.insert(toks[i + 2].text);
    }
}

const SourceFile *
Project::pairOf(const SourceFile &file) const
{
    const std::string &rel = file.relPath();
    auto swap_ext = [&](const char *from,
                        const char *to) -> const SourceFile * {
        std::string f(from);
        if (rel.size() <= f.size() ||
            rel.compare(rel.size() - f.size(), f.size(), f) != 0)
            return nullptr;
        std::string other =
            rel.substr(0, rel.size() - f.size()) + to;
        auto it = _byRelPath.find(other);
        return it == _byRelPath.end() ? nullptr
                                      : _files[it->second].get();
    };
    if (const SourceFile *p = swap_ext(".cc", ".hh"))
        return p;
    if (const SourceFile *p = swap_ext(".hh", ".cc"))
        return p;
    if (const SourceFile *p = swap_ext(".cpp", ".hpp"))
        return p;
    if (const SourceFile *p = swap_ext(".hpp", ".cpp"))
        return p;
    return nullptr;
}

const std::vector<std::string> &
Project::basesOf(const std::string &class_name) const
{
    static const std::vector<std::string> none;
    auto it = _classBases.find(class_name);
    return it == _classBases.end() ? none : it->second;
}

bool
Project::derivesFrom(const std::string &class_name,
                     const std::string &base) const
{
    std::vector<std::string> todo = {class_name};
    std::set<std::string> seen;
    while (!todo.empty()) {
        std::string cur = todo.back();
        todo.pop_back();
        if (!seen.insert(cur).second)
            continue;
        for (const std::string &b : basesOf(cur)) {
            if (b == base)
                return true;
            todo.push_back(b);
        }
    }
    return false;
}

std::vector<Diagnostic>
Project::run(const std::set<std::string> &rules) const
{
    std::vector<Diagnostic> out;
    for (const auto &f : _files) {
        for (const RuleInfo &r : allRules()) {
            if (!rules.empty() && !rules.count(r.name))
                continue;
            r.check(*f, *this, out);
        }
    }
    // Drop suppressed findings.
    std::vector<Diagnostic> kept;
    for (Diagnostic &d : out) {
        auto it = _byRelPath.find(d.file);
        if (it != _byRelPath.end() &&
            _files[it->second]->suppressed(d.rule, d.line))
            continue;
        kept.push_back(std::move(d));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return kept;
}

// ------------------------------------------------------------------- CLI

bool
parseArgs(int argc, const char *const *argv, Options &opts,
          std::ostream &err)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            opts.listRules = true;
        } else if (arg.rfind("--rules=", 0) == 0) {
            std::string list = arg.substr(8);
            std::size_t start = 0;
            while (start <= list.size()) {
                std::size_t comma = list.find(',', start);
                std::string name =
                    comma == std::string::npos
                        ? list.substr(start)
                        : list.substr(start, comma - start);
                if (!name.empty())
                    opts.rules.insert(name);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            err << "usage: htlint [--rules=r1,r2] [--list-rules] "
                   "<files-or-dirs>...\n";
            return false;
        } else if (!arg.empty() && arg[0] == '-') {
            err << "htlint: unknown option '" << arg << "'\n";
            return false;
        } else {
            opts.paths.push_back(arg);
        }
    }
    if (!opts.listRules && opts.paths.empty()) {
        err << "usage: htlint [--rules=r1,r2] [--list-rules] "
               "<files-or-dirs>...\n";
        return false;
    }
    for (const std::string &r : opts.rules) {
        bool known = false;
        for (const RuleInfo &info : allRules())
            known = known || r == info.name;
        if (!known) {
            err << "htlint: unknown rule '" << r << "'\n";
            return false;
        }
    }
    return true;
}

std::vector<std::string>
collectFiles(const std::vector<std::string> &paths, std::ostream &err)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    auto wanted = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
               ext == ".hpp" || ext == ".h";
    };
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end;
                 !ec && it != end; it.increment(ec)) {
                if (it->is_regular_file(ec) && wanted(it->path()))
                    files.push_back(
                        it->path().lexically_normal()
                            .generic_string());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(
                fs::path(p).lexically_normal().generic_string());
        } else {
            err << "htlint: cannot read '" << p << "'\n";
            return {};
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());
    return files;
}

int
runHtlint(const Options &opts, std::ostream &out, std::ostream &err)
{
    if (opts.listRules) {
        for (const RuleInfo &r : allRules())
            out << r.name << "\n    " << r.description << "\n";
        return 0;
    }
    std::vector<std::string> files = collectFiles(opts.paths, err);
    if (files.empty()) {
        err << "htlint: no input files\n";
        return 2;
    }
    Project proj;
    for (const std::string &f : files) {
        if (!proj.addFile(f, f)) {
            err << "htlint: cannot read '" << f << "'\n";
            return 2;
        }
    }
    std::vector<Diagnostic> diags = proj.run(opts.rules);
    for (const Diagnostic &d : diags)
        out << d.file << ":" << d.line << ": [" << d.rule << "] "
            << d.message << "\n";
    if (diags.empty()) {
        out << "htlint: clean (" << files.size() << " files)\n";
        return 0;
    }
    out << "htlint: " << diags.size() << " violation(s) in "
        << files.size() << " files (suppress with "
           "'// htlint: allow(<rule>)')\n";
    return 1;
}

} // namespace hypertee::htlint
