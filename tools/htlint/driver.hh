/**
 * @file
 * File collection and the command-line entry point, separated from
 * main() so the fixture tests can drive the linter in-process.
 */

#ifndef HYPERTEE_TOOLS_HTLINT_DRIVER_HH
#define HYPERTEE_TOOLS_HTLINT_DRIVER_HH

#include <ostream>
#include <string>
#include <vector>

#include "tools/htlint/rules.hh"

namespace hypertee::htlint
{

struct Options
{
    /** Rules to run; empty = all. */
    std::set<std::string> rules;
    /** Directories/files to scan, relative to the working dir. */
    std::vector<std::string> paths;
    bool listRules = false;
};

/** Parse argv; returns false (and explains on @p err) on bad usage. */
bool parseArgs(int argc, const char *const *argv, Options &opts,
               std::ostream &err);

/**
 * Recursively collect .cc/.hh/.cpp/.hpp/.h files under each of
 * @p paths (files are taken as-is), sorted for deterministic output.
 */
std::vector<std::string>
collectFiles(const std::vector<std::string> &paths, std::ostream &err);

/**
 * Run the linter: load every file, run the selected rules, print
 * diagnostics to @p out. Returns the process exit code: 0 clean,
 * 1 violations found, 2 usage/IO error.
 */
int runHtlint(const Options &opts, std::ostream &out,
              std::ostream &err);

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_DRIVER_HH
