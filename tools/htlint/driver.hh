/**
 * @file
 * File collection and the command-line entry point, separated from
 * main() so the fixture tests can drive the linter in-process.
 */

#ifndef HYPERTEE_TOOLS_HTLINT_DRIVER_HH
#define HYPERTEE_TOOLS_HTLINT_DRIVER_HH

#include <ostream>
#include <string>
#include <vector>

#include "tools/htlint/rules.hh"

namespace hypertee::htlint
{

struct Options
{
    /** Rules to run; empty = all. */
    std::set<std::string> rules;
    /** Directories/files to scan, relative to the working dir. */
    std::vector<std::string> paths;
    bool listRules = false;
    /** Print every allow()/allow-file() suppression and exit. */
    bool listSuppressions = false;
    /** "text" (default) or "sarif" (SARIF 2.1.0 on stdout). */
    std::string format = "text";
    /** Known-findings file: matches are filtered out (exit 0). */
    std::string baselinePath;
    /** Write the current findings as a new baseline and exit 0. */
    std::string writeBaselinePath;
    /** Parallel file-loading threads; 1 = serial. */
    int jobs = 1;
    /** Print per-phase wall times (collect/load/index/callgraph/
     *  analyze) to stderr after the scan. */
    bool stats = false;
    /** Skip directories named "fixtures" (lint-fixture corpora). */
    bool defaultExcludes = true;
};

/** Parse argv; returns false (and explains on @p err) on bad usage. */
bool parseArgs(int argc, const char *const *argv, Options &opts,
               std::ostream &err);

/**
 * Recursively collect .cc/.hh/.cpp/.hpp/.h files under each of
 * @p paths (files are taken as-is), sorted for deterministic output.
 * Overlapping arguments (`htlint src src/mem`) are deduped by
 * canonical path, so every file is scanned exactly once. Directories
 * named "fixtures" are skipped unless @p default_excludes is false.
 */
std::vector<std::string>
collectFiles(const std::vector<std::string> &paths, std::ostream &err,
             bool default_excludes = true);

/**
 * The closest rule name to @p name by edit distance, for "did you
 * mean" hints; "" when nothing is plausibly close.
 */
std::string closestRuleName(const std::string &name);

/**
 * The stable identity of a finding across line-number churn:
 * tab-separated rule/file/message with backslash, tab, and newline
 * escaped, so a `|` (or anything else) inside a message can never
 * collide with the field separator.
 */
std::string baselineKey(const Diagnostic &d);

/**
 * The pre-escaping `rule|file|message` key. Baselines written by
 * older htlint versions still match through it; new baselines are
 * written with baselineKey() only.
 */
std::string legacyBaselineKey(const Diagnostic &d);

/**
 * Run the linter: load every file, run the selected rules, print
 * diagnostics to @p out. Returns the process exit code: 0 clean,
 * 1 violations found, 2 usage/IO error (including suppression
 * comments that name unknown rules).
 */
int runHtlint(const Options &opts, std::ostream &out,
              std::ostream &err);

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_DRIVER_HH
