/**
 * @file
 * Whole-program concurrency analysis over the index/callgraph
 * pipeline: must-hold lockset propagation (`lockset`), the global
 * lock-acquisition-order graph (`lock-order`), atomics misuse
 * (`atomic-sanity`), and mutable state escaping into shard-executed
 * code (`shard-escape`).
 *
 * Everything is built on one shared model: per function, the list of
 * mutex acquisitions (RAII guards and direct `.lock()` calls) with
 * the token range each one is held over. The lockset rule asks "is
 * this guarded field access inside such a range, or do *all* callers
 * provably hold the mutex at the call site?"; the lock-order rule
 * turns "acquired B while holding A" (directly or transitively
 * through calls) into a directed graph and reports its cycles; the
 * shard rule treats a held lock as legitimate protection.
 *
 * Like the rest of htlint this is lexer+scope based, and the call
 * graph over-approximates: a spurious edge can make lock-order more
 * conservative but can also *prove* a lockset via a caller that never
 * really calls the helper -- acceptable for a linter whose findings
 * are reviewed, and far stronger than the name-pattern (`*Locked`)
 * exemptions it replaces.
 */

#ifndef HYPERTEE_TOOLS_HTLINT_LOCKS_HH
#define HYPERTEE_TOOLS_HTLINT_LOCKS_HH

#include <vector>

#include "tools/htlint/rules.hh"

namespace hypertee::htlint
{

/** `lockset`: guarded-by fields need a held or caller-proven lock. */
void checkLockset(const Project &proj, std::vector<Diagnostic> &out);

/** `lock-order`: cycles in the global acquisition-order graph. */
void checkLockOrder(const Project &proj, std::vector<Diagnostic> &out);

/** `atomic-sanity`: split RMWs, relaxed handoffs, DCL w/o acquire. */
void checkAtomicSanity(const Project &proj,
                       std::vector<Diagnostic> &out);

/** `shard-escape`: shared mutable state reached from shard code. */
void checkShardEscape(const Project &proj,
                      std::vector<Diagnostic> &out);

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_LOCKS_HH
