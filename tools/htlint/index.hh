/**
 * @file
 * Phase-1 whole-program index.
 *
 * Every translation unit is distilled into the symbols the
 * interprocedural rules need: function/method definitions (with
 * parameter names and body token ranges), call sites (with argument
 * token ranges, so dataflow rules can classify what a caller passes),
 * and `// htlint: guarded-by(mutex)` field annotations. Still
 * lexer+scope based — no libclang — so the index is approximate by
 * design: call sites resolve by name (plus receiver/qualifier hints,
 * see callgraph.hh) and the rules built on top treat it as an
 * over-approximation of the real call graph.
 */

#ifndef HYPERTEE_TOOLS_HTLINT_INDEX_HH
#define HYPERTEE_TOOLS_HTLINT_INDEX_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tools/htlint/source_file.hh"

namespace hypertee::htlint
{

/** One function or method definition (a body, not a declaration). */
struct FunctionDef
{
    std::string name;      ///< unqualified name
    std::string className; ///< qualifying/enclosing type ("" if free)
    int fileIdx = -1;      ///< index into the project's file list
    int blockIdx = -1;     ///< index into that file's blocks()
    int line = 0;
    std::size_t open = 0;  ///< token index of the body '{'
    std::size_t close = 0; ///< token index of the matching '}'
    /** Parameter names in declaration order ("" when unnamed). */
    std::vector<std::string> params;
};

/** One call expression `callee(...)` / `recv.callee(...)`. */
struct CallSite
{
    std::string callee;
    /** Receiver/qualifier identifier ("" for a plain call). */
    std::string receiver;
    /** True for `Qual::callee(...)` (receiver is the qualifier). */
    bool qualified = false;
    int fileIdx = -1;
    std::size_t tokenIdx = 0; ///< index of the callee token
    int line = 0;
    int callerFn = -1; ///< FunctionDef index; -1 at file scope
    /** Token ranges [begin, end) of each top-level argument. */
    std::vector<std::pair<std::size_t, std::size_t>> args;
};

/** A field annotated `// htlint: guarded-by(mutexName)`. */
struct GuardedField
{
    std::string className;
    std::string field;
    std::string mutexName;
    int fileIdx = -1;
    int line = 0;
};

class ProjectIndex
{
  public:
    /** Build the index over @p files (phase 1). */
    void build(const std::vector<std::unique_ptr<SourceFile>> &files);

    const std::vector<FunctionDef> &functions() const
    {
        return _functions;
    }
    const std::vector<CallSite> &calls() const { return _calls; }
    const std::vector<GuardedField> &guardedFields() const
    {
        return _guardedFields;
    }

    /** FunctionDef indices of every definition named @p name. */
    const std::vector<int> &functionsNamed(const std::string &name) const;

    /** CallSite indices of every call whose callee is @p name. */
    const std::vector<int> &callsNamed(const std::string &name) const;

    /**
     * Innermost FunctionDef containing token @p tok_idx of file
     * @p file_idx (walking up through lambdas/statements); -1 when
     * the token is at file, namespace, or class scope.
     */
    int functionAt(int file_idx, std::size_t tok_idx) const;

  private:
    void indexFunctions(const SourceFile &f, int file_idx);
    void indexCalls(const SourceFile &f, int file_idx);
    void indexGuardedFields(const SourceFile &f, int file_idx);

    std::vector<FunctionDef> _functions;
    std::vector<CallSite> _calls;
    std::vector<GuardedField> _guardedFields;
    std::map<std::string, std::vector<int>> _functionsByName;
    std::map<std::string, std::vector<int>> _callsByCallee;
    /** (fileIdx, blockIdx) -> FunctionDef index. */
    std::map<std::pair<int, int>, int> _functionByBlock;
    /** Per file: pointer back to the SourceFile (for functionAt). */
    std::vector<const SourceFile *> _files;
};

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_INDEX_HH
