#include "tools/htlint/lexer.hh"

#include <cctype>

namespace hypertee::htlint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

} // namespace

LexedFile
lex(const std::string &text)
{
    LexedFile out;
    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;
    int parenDepth = 0;
    int braceDepth = 0;
    bool inDirective = false;
    // True until a non-whitespace, non-comment char is seen on the
    // current line; a '#' here starts a preprocessor directive and a
    // comment here is an own-line comment.
    bool atLineStart = true;

    auto push = [&](TokKind kind, std::string tok_text, int tok_line) {
        Token t;
        t.kind = kind;
        t.text = std::move(tok_text);
        t.line = tok_line;
        t.inDirective = inDirective;
        t.parenDepth = parenDepth;
        t.braceDepth = braceDepth;
        out.tokens.push_back(std::move(t));
    };

    while (i < n) {
        char c = text[i];

        if (c == '\n') {
            // A directive ends at an unescaped newline; the escape is
            // consumed below before we ever see the newline here.
            inDirective = false;
            atLineStart = true;
            ++line;
            ++i;
            continue;
        }
        if (c == '\\' && i + 1 < n && text[i + 1] == '\n') {
            ++line;
            i += 2;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
            c == '\v') {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            Comment cm;
            cm.line = line;
            cm.endLine = line;
            cm.ownLine = atLineStart;
            i += 2;
            while (i < n && text[i] != '\n')
                cm.text.push_back(text[i++]);
            out.comments.push_back(std::move(cm));
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            Comment cm;
            cm.line = line;
            cm.ownLine = atLineStart;
            i += 2;
            while (i + 1 < n &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    ++line;
                cm.text.push_back(text[i++]);
            }
            i += (i + 1 < n) ? 2 : 1;
            cm.endLine = line;
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Preprocessor directive start.
        if (c == '#' && atLineStart) {
            inDirective = true;
            atLineStart = false;
            push(TokKind::Punct, "#", line);
            ++i;
            continue;
        }
        atLineStart = false;

        // Raw string literal R"tag(...)tag".
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            std::size_t tag_start = i + 2;
            std::size_t p = tag_start;
            while (p < n && text[p] != '(' && text[p] != '\n')
                ++p;
            if (p < n && text[p] == '(') {
                std::string close =
                    ")" + text.substr(tag_start, p - tag_start) + "\"";
                std::size_t body = p + 1;
                std::size_t end = text.find(close, body);
                if (end == std::string::npos)
                    end = n;
                int start_line = line;
                for (std::size_t q = i; q < end && q < n; ++q)
                    if (text[q] == '\n')
                        ++line;
                push(TokKind::String,
                     text.substr(i, std::min(end + close.size(), n) - i),
                     start_line);
                i = std::min(end + close.size(), n);
                continue;
            }
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            // '\'' after an identifier/digit inside a number is
            // handled by the number path below, so a quote here is a
            // real literal.
            char quote = c;
            std::string lit(1, quote);
            ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\' && i + 1 < n) {
                    lit.push_back(text[i]);
                    lit.push_back(text[i + 1]);
                    if (text[i + 1] == '\n')
                        ++line;
                    i += 2;
                    continue;
                }
                if (text[i] == '\n') {
                    ++line; // unterminated; recover at newline
                    break;
                }
                lit.push_back(text[i++]);
            }
            if (i < n && text[i] == quote) {
                lit.push_back(quote);
                ++i;
            }
            push(quote == '"' ? TokKind::String : TokKind::CharLit,
                 std::move(lit), line);
            continue;
        }

        // Number (handles 0x1F, 1'000'000, 1e-5, 1.5f).
        if (isDigit(c) ||
            (c == '.' && i + 1 < n && isDigit(text[i + 1]))) {
            std::string num;
            while (i < n) {
                char d = text[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    num.push_back(d);
                    ++i;
                    continue;
                }
                if ((d == '+' || d == '-') && !num.empty()) {
                    char prev = num.back();
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        num.push_back(d);
                        ++i;
                        continue;
                    }
                }
                break;
            }
            push(TokKind::Number, std::move(num), line);
            continue;
        }

        // Identifier.
        if (isIdentStart(c)) {
            std::string id;
            while (i < n && isIdentChar(text[i]))
                id.push_back(text[i++]);
            push(TokKind::Identifier, std::move(id), line);
            continue;
        }

        // Punctuation. '::' and '->' are kept whole; depth counters
        // are updated for code (not directive) tokens.
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            push(TokKind::Punct, "::", line);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && text[i + 1] == '>') {
            push(TokKind::Punct, "->", line);
            i += 2;
            continue;
        }
        if (!inDirective) {
            if (c == '(')
                ++parenDepth;
            else if (c == '{')
                ++braceDepth;
        }
        push(TokKind::Punct, std::string(1, c), line);
        if (!inDirective) {
            if (c == ')' && parenDepth > 0)
                --parenDepth;
            else if (c == '}' && braceDepth > 0)
                --braceDepth;
        }
        ++i;
    }
    return out;
}

} // namespace hypertee::htlint
