/**
 * @file
 * SARIF 2.1.0 emission for htlint diagnostics, so CI can upload
 * findings to code-scanning UIs. Hand-rolled JSON (no dependency):
 * the document shape is fixed, only strings need escaping.
 */

#ifndef HYPERTEE_TOOLS_HTLINT_SARIF_HH
#define HYPERTEE_TOOLS_HTLINT_SARIF_HH

#include <ostream>
#include <vector>

#include "tools/htlint/rules.hh"

namespace hypertee::htlint
{

/**
 * Write @p diags as a single-run SARIF 2.1.0 log to @p out. Every
 * rule in allRules() is declared in tool.driver.rules (with its
 * description) whether or not it fired, so ruleIndex references and
 * rule metadata stay stable across runs.
 */
void writeSarif(const std::vector<Diagnostic> &diags,
                std::ostream &out);

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace hypertee::htlint

#endif // HYPERTEE_TOOLS_HTLINT_SARIF_HH
